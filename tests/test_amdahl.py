"""Amdahl model (Figure 3 analytics)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.amdahl import (
    amdahl_speedup, memory_bound_speedup, speedup_separate,
    speedup_overlapped, useful_concurrency_limit, figure3_series)


def test_classical_formula():
    assert abs(amdahl_speedup(0.5, 2.0) - 1 / (0.5 + 0.25)) < 1e-12


def test_paper_numbers():
    # fraction_enhanced = 0.68, infinite enhancement -> 1/0.32 ~ 3.1
    assert abs(memory_bound_speedup(0.32) - 3.125) < 1e-9
    assert abs(speedup_separate(0.32, 1e9) - 3.125) < 1e-3


def test_no_enhancement_means_no_speedup_for_separate_memory():
    assert abs(speedup_separate(0.32, 1.0) - 1.0) < 1e-12


def test_overlap_alone_already_helps():
    # Even at enhancement 1, overlapping memory with computation hides
    # the shorter of the two: speedup = 1 / max(f, 1-f).
    assert abs(speedup_overlapped(0.32, 1.0) - 1 / 0.68) < 1e-9


def test_overlapped_saturates_at_memory_bound():
    assert abs(speedup_overlapped(0.32, 100)
               - memory_bound_speedup(0.32)) < 1e-9


def test_overlapped_dominates_separate():
    for enhancement in (1.5, 2.0, 3.0, 10.0):
        assert speedup_overlapped(0.32, enhancement) >= \
            speedup_separate(0.32, enhancement) - 1e-12


def test_useful_concurrency_limit():
    limit = useful_concurrency_limit(0.32)
    assert abs(limit - 0.68 / 0.32) < 1e-12
    # Beyond the limit the overlapped curve is flat.
    assert abs(speedup_overlapped(0.32, limit)
               - speedup_overlapped(0.32, limit * 2)) < 1e-9


def test_series_shape():
    series = figure3_series(0.32, [1, 2, 4])
    assert len(series["separate"]) == 3
    assert series["overlapped"][0] <= series["overlapped"][-1]


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        memory_bound_speedup(0.0)
    with pytest.raises(ValueError):
        speedup_overlapped(0.32, 0)
    with pytest.raises(ValueError):
        amdahl_speedup(0.5, 0)


@given(st.floats(min_value=0.05, max_value=0.95),
       st.floats(min_value=1.0, max_value=100.0))
def test_speedups_monotone_and_bounded(mem_fraction, enhancement):
    separate = speedup_separate(mem_fraction, enhancement)
    overlapped = speedup_overlapped(mem_fraction, enhancement)
    assert 1.0 - 1e-9 <= separate <= memory_bound_speedup(mem_fraction) + 1e-9
    assert separate <= overlapped + 1e-9
    assert overlapped <= memory_bound_speedup(mem_fraction) + 1e-9
