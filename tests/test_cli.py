"""Command-line interface."""

import io

import pytest

from repro.cli import main, build_parser

SOURCE = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app([1,2], [3], X), write(X), nl.
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.pl"
    path.write_text(SOURCE)
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    err = io.StringIO()
    status = main(argv, out=out, err=err)
    return status, out.getvalue(), err.getvalue()


def test_run_prints_program_output(program_file):
    status, text, errors = run_cli(["run", program_file])
    assert status == 0
    assert text == "[1,2,3]\n"


def test_run_stats_flag(program_file):
    status, text, errors = run_cli(["run", program_file, "--stats"])
    assert "steps=" in text and "status=0" in text


def test_run_failing_program_reports_status(tmp_path):
    path = tmp_path / "f.pl"
    path.write_text("p(a). main :- p(b).")
    status, text, errors = run_cli(["run", str(path)])
    assert status == 1


def test_run_with_optimize(program_file):
    status, text, errors = run_cli(["run", program_file, "--optimize"])
    assert status == 0 and text == "[1,2,3]\n"


def test_run_custom_entry(tmp_path):
    path = tmp_path / "g.pl"
    path.write_text("go :- write(hi), nl. main :- fail.")
    status, text, errors = run_cli(["run", str(path), "--entry", "go"])
    assert status == 0 and text == "hi\n"


def test_listing_shows_both_levels(program_file):
    status, text, errors = run_cli(["listing", program_file])
    assert "P:app/3" in text        # BAM level
    assert "jmpr" in text           # ICI level


def test_listing_bam_only(program_file):
    status, text, errors = run_cli(["listing", program_file, "--level", "bam"])
    assert "Proceed" in text and "jmpr" not in text


def test_speedup_default_machine(program_file):
    status, text, errors = run_cli(["speedup", program_file])
    assert status == 0
    assert text.startswith("vliw3")
    value = float(text.split()[1].rstrip("x"))
    assert 1.0 < value < 5.0


def test_speedup_multiple_machines(program_file):
    status, text, errors = run_cli(["speedup", program_file, "-m", "seq",
                            "-m", "ideal"])
    lines = text.strip().splitlines()
    assert len(lines) == 2
    assert abs(float(lines[0].split()[1].rstrip("x")) - 1.0) < 1e-9


def test_analyze_reports_mix_and_branches(program_file):
    status, text, errors = run_cli(["analyze", program_file])
    assert "dynamic operations:" in text
    assert "P_fp" in text
    assert "mem" in text


def test_bench_known_name(tmp_path):
    output = str(tmp_path / "BENCH_emulator.json")
    status, text, errors = run_cli(
        ["bench", "conc30", "--repeat", "1", "--output", output])
    assert status == 0
    assert "steps=" in text
    assert "cg" in text and "ref=" in text
    assert " ok" in text


def test_bench_unknown_name(tmp_path):
    status, text, errors = run_cli(
        ["bench", "nonesuch",
         "--output", str(tmp_path / "BENCH_emulator.json")])
    assert status == 2
    assert "available" in errors


def test_bench_quick_writes_schema_valid_record(tmp_path):
    import json
    from repro.benchmarks.perf import QUICK_BENCHMARKS, validate_bench
    output = str(tmp_path / "BENCH_emulator.json")
    status, text, errors = run_cli(
        ["bench", "--quick", "--repeat", "1", "--output", output])
    assert status == 0, errors
    with open(output) as handle:
        document = json.load(handle)
    assert validate_bench(document) == []
    assert [entry["name"] for entry in document["benchmarks"]] \
        == list(QUICK_BENCHMARKS)
    assert sorted(document["benchmarks"][0]["backends"]) \
        == ["codegen", "reference", "threaded"]
    assert document["summary"]["all_identical"] is True


def test_bench_backend_subset(tmp_path):
    import json
    from repro.benchmarks.perf import validate_bench
    output = str(tmp_path / "BENCH_emulator.json")
    status, text, errors = run_cli(
        ["bench", "conc30", "--repeat", "1",
         "--backend", "codegen", "--backend", "reference",
         "--output", output])
    assert status == 0, errors
    with open(output) as handle:
        document = json.load(handle)
    assert validate_bench(document) == []
    assert document["backends_timed"] == ["codegen", "reference"]
    entry = document["benchmarks"][0]
    assert sorted(entry["backends"]) == ["codegen", "reference"]
    # each row names the backend that actually produced its profile
    assert entry["backends"]["reference"]["produced_by"] == "reference"
    assert entry["backends"]["codegen"]["produced_by"] == "codegen"
    assert "codegen" in entry["speedups"]
    assert "threaded" not in entry["backends"]


def test_bench_rejects_names_with_quick(tmp_path):
    status, text, errors = run_cli(
        ["bench", "conc30", "--quick",
         "--output", str(tmp_path / "b.json")])
    assert status == 2
    assert "not both" in errors


def test_lint_clean_program(program_file):
    status, text, errors = run_cli(["lint", program_file])
    assert status == 0
    assert "clean" in text and errors == ""


def test_lint_optimized_program(program_file):
    status, text, errors = run_cli(["lint", program_file, "--optimize"])
    assert status == 0


def test_verify_single_benchmark_single_machine():
    status, text, errors = run_cli(
        ["verify", "--bench", "conc30", "-m", "vliw3", "-m", "seq"])
    assert status == 0
    assert "conc30" in text and "clean" in text


def test_verify_unknown_benchmark():
    status, text, errors = run_cli(["verify", "--bench", "nonesuch"])
    assert status == 2
    assert "available" in errors


def test_verify_unknown_machine():
    status, text, errors = run_cli(["verify", "-m", "warp9"])
    assert status == 2
    assert "warp9" in errors


def test_verify_source_file(program_file):
    status, text, errors = run_cli(
        ["verify", "--file", program_file, "-m", "vliw3"])
    assert status == 0
    assert "clean" in text


def test_warren_flags(program_file):
    status, text, errors = run_cli(["run", program_file, "--no-indexing",
                            "--no-lco"])
    assert status == 0 and text == "[1,2,3]\n"


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# --------------------------------------------------------------------------
# The supervised sweep surface: --report / --max-attempts /
# --cell-timeout and the outcome summary line.

def test_evaluate_smoke_writes_supervisor_report(tmp_path, monkeypatch):
    import json
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    report_path = str(tmp_path / "report.json")
    status, text, errors = run_cli(
        ["evaluate", "--jobs", "1", "--bench", "conc30",
         "--max-attempts", "2", "--cell-timeout", "0",
         "--report", report_path])
    assert status == 0
    assert "supervisor:" in text and "ok" in text
    document = json.load(open(report_path))
    assert document["tasks"]
    assert all(task["status"] in ("ok", "cached")
               for task in document["tasks"])
    assert document["degraded"] is False
    assert document["pool_restarts"] == 0
    assert document["interrupted"] is None


def test_evaluate_survives_an_injected_transient_fault(
        tmp_path, monkeypatch):
    from repro.testing import faults
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    with faults.injected("parallel.task=error:1"):
        status, text, errors = run_cli(
            ["evaluate", "--jobs", "1", "--bench", "conc30"])
    assert status == 0
    assert "retried" in text


# --------------------------------------------------------------------------
# REPRO_EMULATOR_BACKEND is honoured consistently: the backend recorded
# in the bench document and in evaluate's profile provenance always
# matches the active override, even against warm caches produced under
# the other backend.

def _profile_column(text, benchmark):
    row = next(line for line in text.splitlines()
               if line.startswith(benchmark))
    return row.split()[-1]


@pytest.mark.parametrize("backend", ("reference", "threaded", "codegen"))
def test_bench_quick_records_env_backend(tmp_path, monkeypatch, backend):
    import json
    monkeypatch.setenv("REPRO_EMULATOR_BACKEND", backend)
    output = str(tmp_path / "BENCH_emulator.json")
    status, text, errors = run_cli(
        ["bench", "--quick", "--repeat", "1", "--output", output])
    assert status == 0, errors
    with open(output) as handle:
        document = json.load(handle)
    assert document["backend"] == backend
    from repro.benchmarks.perf import validate_bench
    assert validate_bench(document) == []


def test_evaluate_profile_backend_follows_env_override(
        tmp_path, monkeypatch):
    """A warm cache written under one backend must not masquerade as
    the profile provenance of a sweep run under the other."""
    from repro.evaluation import parallel
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for backend in ("reference", "codegen", "threaded", "reference"):
        monkeypatch.setenv("REPRO_EMULATOR_BACKEND", backend)
        monkeypatch.setattr(parallel, "_worker_programs", {})
        monkeypatch.setattr(parallel, "_worker_regions", {})
        status, text, errors = run_cli(
            ["evaluate", "--jobs", "1", "--bench", "conc30"])
        assert status == 0, errors
        assert _profile_column(text, "conc30") == backend


# -- machine-readable diagnostics --------------------------------------------

def test_lint_json_document(program_file):
    import json
    from repro.analysis.report import validate_diagnostics
    status, text, errors = run_cli(["lint", program_file,
                                    "--format", "json"])
    assert status == 0
    document = json.loads(text)
    assert validate_diagnostics(document) == []
    assert document["tool"] == "lint"
    assert document["count"] == 0
    (entry,) = document["targets"]
    assert entry["target"] == program_file and entry["ops"] > 0


def test_verify_json_document(program_file):
    import json
    from repro.analysis.report import validate_diagnostics
    status, text, errors = run_cli(["verify", "--file", program_file,
                                    "-m", "vliw3", "--format", "json"])
    assert status == 0
    document = json.loads(text)
    assert validate_diagnostics(document) == []
    assert document["tool"] == "verify"
    (entry,) = document["targets"]
    assert entry["machine_configs"] == ["vliw3"]


def test_analyze_suite_json_document(tmp_path):
    import json
    from repro.analysis.report import validate_analysis
    out_path = tmp_path / "analyze.json"
    perf_path = tmp_path / "BENCH_analyze.json"
    status, text, errors = run_cli([
        "analyze", "--bench", "conc30", "--format", "json",
        "--output", str(out_path), "--perf", str(perf_path)])
    assert status == 0, errors
    document = json.loads(text)
    assert validate_analysis(document) == []
    assert json.loads(out_path.read_text()) == document
    (entry,) = document["targets"]
    assert entry["target"] == "conc30"
    ilp = entry["ilp"]
    assert ilp["dataflow_limit_cycles"] <= ilp["achieved_cycles"]
    assert ilp["gap"] >= 1.0
    perf = json.loads(perf_path.read_text())
    assert perf["kind"] == "analyze-perf"
    assert perf["benchmarks"][0]["target"] == "conc30"


def test_analyze_suite_text_table():
    status, text, errors = run_cli(["analyze", "--bench", "conc30"])
    assert status == 0, errors
    assert "conc30" in text
    assert "dfl" in text and "gap" in text


def test_analyze_unknown_benchmark():
    status, text, errors = run_cli(["analyze", "--bench", "nonesuch"])
    assert status == 2
    assert "available" in errors


def test_analyze_single_file_still_reports_mix(program_file):
    status, text, errors = run_cli(["analyze", program_file])
    assert status == 0
    assert "mix" in text.lower() or "branch" in text.lower()


# --------------------------------------------------------------------------
# Cache maintenance commands and eager fault-spec validation.

def test_cache_stats_on_fresh_directory(tmp_path):
    status, text, errors = run_cli(
        ["cache", "stats", "--dir", str(tmp_path / "nothing")])
    assert status == 0, errors
    assert "0 entr" in text


def test_cache_gc_evicts_to_budget(tmp_path):
    from repro.evaluation.cache import ShardedCacheStore
    store = ShardedCacheStore(str(tmp_path / "cas"), shards=2)
    for n in range(4):
        store.put(store.key("cell", {"n": n}), {"pad": "x" * 128})
    status, text, errors = run_cli(
        ["cache", "gc", "--dir", str(tmp_path / "cas"),
         "--shards", "2", "--budget", "1"])
    assert status == 0, errors
    assert "removed 4" in text
    assert store.usage()["entries"] == 0


def test_typoed_fault_spec_fails_fast_with_site_menu(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "serve.request=bogus:1")
    status, text, errors = run_cli(["cache", "stats"])
    assert status == 2
    assert "invalid REPRO_FAULT_INJECT" in errors
    assert "known fault sites:" in errors
    assert "serve.request: error | shed | hang" in errors
