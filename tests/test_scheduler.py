"""List scheduler: dependence and resource correctness, plus hypothesis
invariants over random regions."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.intcode.ici import Ici, OP_CLASS
from repro.analysis.dependence import build_dag
from repro.compaction.machine_model import (
    MachineConfig, sequential, bam_like, vliw, ideal, symbol3)
from repro.compaction.scheduler import schedule_region


def check_valid(instructions, schedule, config):
    """Assert the schedule respects dependences and resources."""
    durations = [config.duration(i.op) for i in instructions]
    dag = build_dag(instructions, durations,
                    branch_branch_latency=config.branch_branch_latency)
    cycles = schedule.cycles
    for index in range(len(instructions)):
        for pred, latency in dag.preds[index]:
            assert cycles[index] >= cycles[pred] + latency, (
                "op %d at %d violates edge from %d at %d (latency %d)"
                % (index, cycles[index], pred, cycles[pred], latency))
    per_cycle = {}
    for index, cycle in enumerate(cycles):
        per_cycle.setdefault(cycle, Counter())[
            OP_CLASS[instructions[index].op]] += 1
    for counts in per_cycle.values():
        assert config.slots_feasible(counts), counts


def chain(n):
    """A serial dependence chain of n ALU ops."""
    ops = [Ici("add", rd="r0", ra="x", rb="x")]
    for index in range(1, n):
        ops.append(Ici("add", rd="r%d" % index, ra="r%d" % (index - 1),
                       rb="x"))
    return ops


def independent(n, cls="add"):
    return [Ici(cls, rd="r%d" % i, ra="x", rb="y") for i in range(n)]


def test_chain_is_serial_even_on_wide_machine():
    ops = chain(6)
    schedule = schedule_region(ops, ideal())
    assert schedule.length == 6


def test_independent_alu_ops_scale_with_units():
    ops = independent(6)
    assert schedule_region(ops, vliw(1)).length == 6
    assert schedule_region(ops, vliw(2)).length == 3
    assert schedule_region(ops, vliw(3)).length == 2
    assert schedule_region(ops, ideal()).length == 1


def test_shared_memory_port_serialises_loads():
    ops = [Ici("ld", rd="r%d" % i, ra="H", imm=i) for i in range(4)]
    # Even with unbounded units, one memory port -> 4 cycles.
    assert schedule_region(ops, ideal()).length == 4


def test_multiway_branches_share_a_cycle():
    ops = [Ici("btag", ra="a", tag=t, label="L") for t in range(3)]
    assert schedule_region(ops, vliw(3)).length == 1
    assert schedule_region(ops, vliw(1)).length == 3


def test_single_ctrl_slot_without_multiway():
    ops = [Ici("btag", ra="a", tag=t, label="L") for t in range(3)]
    config = MachineConfig("m", n_units=3, multiway=False)
    assert schedule_region(ops, config).length == 3


def test_in_order_machine_keeps_program_order():
    ops = [Ici("ld", rd="a", ra="H", imm=0),
           Ici("add", rd="b", ra="a", rb="a"),   # stalls on the load
           Ici("mov", rd="c", ra="x")]
    schedule = schedule_region(ops, sequential())
    assert schedule.cycles == [0, 2, 3]


def test_bam_fills_load_delay():
    ops = [Ici("ld", rd="a", ra="H", imm=0),
           Ici("add", rd="b", ra="a", rb="a"),
           Ici("mov", rd="c", ra="x")]
    schedule = schedule_region(ops, bam_like())
    # The BAM unit issues the move alongside the load (its instruction
    # set packs a memory access and a data movement), and the dependent
    # add waits out the 2-cycle load.
    assert schedule.length == 3
    assert schedule.cycles == [0, 2, 0]


def test_speculation_disabled_pins_everything_below_branches():
    ops = [Ici("btag", ra="c", tag=1, label="L"),
           Ici("add", rd="x", ra="a", rb="b")]
    no_spec = MachineConfig("m", n_units=4, speculation=False)
    schedule = schedule_region(ops, no_spec)
    assert schedule.cycles[1] > schedule.cycles[0]
    with_spec = vliw(4)
    schedule = schedule_region(ops, with_spec)
    assert schedule.cycles[1] == schedule.cycles[0] == 0


def test_exit_cost_includes_transfer_penalty():
    ops = [Ici("jmp", label="L")]
    seq_schedule = schedule_region(ops, sequential())
    assert seq_schedule.exit_cost(0) == 0 + 1 + 1   # 2-cycle ctrl, 0 filled
    vliw_schedule = schedule_region(ops, vliw(1))
    assert vliw_schedule.exit_cost(0) == 0 + 1 + 0  # delay slot filled
    proto = schedule_region(ops, symbol3())
    assert proto.exit_cost(0) == 0 + 1 + 2          # 3-cycle ctrl, squashed


def test_prototype_format_limits_ctrl_plus_alu():
    # 3 units, format B needed for ctrl; ALU+move demand competes.
    ops = ([Ici("btag", ra="a", tag=1, label="L") for _ in range(2)]
           + independent(2))
    schedule = schedule_region(ops, symbol3())
    check_valid(ops, schedule, symbol3())
    per_cycle = Counter(schedule.cycles)
    # cycle 0 can hold at most: ctrl + max(alu, move) <= 3.
    assert per_cycle[0] <= 3


def test_empty_region():
    schedule = schedule_region([], vliw(2))
    assert schedule.length == 0


def test_utilisation_metric():
    ops = independent(4)
    schedule = schedule_region(ops, vliw(2))
    assert abs(schedule.utilisation() - 2.0) < 1e-9


# -- hypothesis: random regions stay valid -----------------------------------

_OPS = st.sampled_from(["add", "mov", "ld", "st", "btag", "lea"])


@st.composite
def regions(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    ops = []
    for index in range(n):
        kind = draw(_OPS)
        ra = "r%d" % draw(st.integers(0, max(index, 1)))
        rb = "r%d" % draw(st.integers(0, max(index, 1)))
        rd = "r%d" % index
        if kind == "ld":
            ops.append(Ici("ld", rd=rd, ra="H", imm=index))
        elif kind == "st":
            ops.append(Ici("st", ra=ra, rb="H", imm=index))
        elif kind == "btag":
            ops.append(Ici("btag", ra=ra, tag=1, label="L"))
        elif kind == "lea":
            ops.append(Ici("lea", rd=rd, ra=ra, imm=1, tag=2))
        else:
            ops.append(Ici(kind, rd=rd, ra=ra, rb=rb))
    return ops


@settings(max_examples=60, deadline=None)
@given(regions(), st.sampled_from([1, 2, 3, 5]))
def test_random_regions_schedule_validly(ops, n_units):
    config = vliw(n_units)
    schedule = schedule_region(ops, config)
    assert sorted(set(range(len(ops)))) == sorted(range(len(ops)))
    assert all(c is not None and c >= 0 for c in schedule.cycles)
    check_valid(ops, schedule, config)


@settings(max_examples=40, deadline=None)
@given(regions())
def test_wider_machines_never_slower(ops):
    lengths = [schedule_region(ops, vliw(n)).length for n in (1, 2, 4)]
    assert lengths[0] >= lengths[1] >= lengths[2]


@settings(max_examples=40, deadline=None)
@given(regions())
def test_in_order_never_faster_than_scheduled(ops):
    in_order = schedule_region(ops, sequential()).length
    scheduled = schedule_region(ops, bam_like()).length
    assert scheduled <= in_order
