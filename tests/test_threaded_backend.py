"""The threaded-code emulator backend: selection, caching, fusion
bookkeeping, bit-identical statistics, and the reference fallback."""

import pytest

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import (
    BACKENDS, Emulator, EmulatorError, ThreadedEmulator, resolve_backend,
    run_program, threaded_code)
from repro.emulator.threaded import basic_blocks, _TERMINATORS


def compile_program(source, entry=("main", 0)):
    return translate_module(compile_source(source, entry))


HELLO = 'main :- write(hello), nl.'
LOOP = """
count(0).
count(N) :- N > 0, M is N - 1, count(M).
main :- count(200), write(done), nl.
"""


# -- backend selection -----------------------------------------------------

def test_backend_order_prefers_codegen():
    assert BACKENDS == ("codegen", "threaded", "reference")
    assert resolve_backend(None) == "codegen"


def test_resolve_explicit_backends():
    assert resolve_backend("reference") == "reference"
    assert resolve_backend("threaded") == "threaded"
    assert resolve_backend("codegen") == "codegen"


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown emulator backend"):
        resolve_backend("nonesuch")


def test_backend_environment_variable(monkeypatch):
    monkeypatch.setenv("REPRO_EMULATOR_BACKEND", "reference")
    assert resolve_backend(None) == "reference"
    program = compile_program(HELLO)
    assert run_program(program).backend == "reference"


def test_backend_environment_variable_invalid(monkeypatch):
    monkeypatch.setenv("REPRO_EMULATOR_BACKEND", "nonesuch")
    with pytest.raises(ValueError):
        run_program(compile_program(HELLO))


def test_run_program_reports_backend():
    program = compile_program(HELLO)
    assert run_program(program, backend="threaded").backend == "threaded"
    assert run_program(program, backend="reference").backend \
        == "reference"


# -- program-level caches (satellite: decode memoisation) ------------------

def test_decode_cached_on_program():
    from repro.emulator import decode
    program = compile_program(HELLO)
    assert program._decoded is None
    first = decode(program)
    assert program._decoded is not None
    assert decode(program) is first


def test_threaded_code_cached_on_program():
    program = compile_program(HELLO)
    assert program._threaded is None
    compiled = threaded_code(program)
    assert threaded_code(program) is compiled
    assert program._threaded is compiled


def test_emulators_share_one_decode():
    program = compile_program(LOOP)
    Emulator(program)
    first = program._decoded
    ThreadedEmulator(program)
    assert program._decoded is first


# -- bit-identical results -------------------------------------------------

def assert_identical(program, **kwargs):
    reference = Emulator(program, **kwargs).run()
    threaded = ThreadedEmulator(program, **kwargs).run()
    assert threaded.status == reference.status
    assert threaded.steps == reference.steps
    assert threaded.output == reference.output
    assert threaded.counts == reference.counts
    assert threaded.taken == reference.taken
    return reference, threaded


def test_identical_on_simple_program():
    reference, threaded = assert_identical(compile_program(HELLO))
    assert threaded.backend == "threaded"
    assert reference.backend == "reference"


def test_identical_on_looping_program():
    assert_identical(compile_program(LOOP))


def test_identical_on_failing_query():
    program = compile_program("p(1).\nmain :- p(2), write(yes), nl.")
    reference, threaded = assert_identical(program)
    assert reference.status == 1


def test_identical_across_repeated_runs():
    """The cached runtime must reset machine state between runs."""
    program = compile_program(LOOP)
    emulator = ThreadedEmulator(program)
    first = emulator.run()
    second = emulator.run()
    assert second.steps == first.steps
    assert second.output == first.output
    assert second.counts == first.counts
    assert second.taken == first.taken


def test_branch_probabilities_match():
    program = compile_program(LOOP)
    reference = Emulator(program).run()
    threaded = ThreadedEmulator(program).run()
    for pc in range(len(program)):
        assert threaded.branch_probability(pc) \
            == reference.branch_probability(pc)


# -- the reference fallback ------------------------------------------------

def test_step_limit_falls_back_to_exact_fault():
    program = compile_program(LOOP)
    baseline = Emulator(program).run()
    limit = baseline.steps // 2
    with pytest.raises(EmulatorError) as reference_error:
        Emulator(program, max_steps=limit).run()
    with pytest.raises(EmulatorError) as threaded_error:
        ThreadedEmulator(program, max_steps=limit).run()
    assert str(threaded_error.value) == str(reference_error.value)


def test_tight_step_limit_still_exact():
    program = compile_program(HELLO)
    with pytest.raises(EmulatorError) as threaded_error:
        ThreadedEmulator(program, max_steps=1).run()
    with pytest.raises(EmulatorError) as reference_error:
        Emulator(program, max_steps=1).run()
    assert str(threaded_error.value) == str(reference_error.value)


def test_fallback_result_reports_reference_backend():
    """A run completed by the fallback is labelled with the backend that
    actually produced it."""
    program = compile_program(LOOP)
    baseline = ThreadedEmulator(program).run()
    # A limit large enough to finish never falls back...
    assert ThreadedEmulator(
        program, max_steps=baseline.steps).run().backend == "threaded"


# -- block structure -------------------------------------------------------

def test_basic_blocks_partition_the_program():
    program = compile_program(LOOP)
    spans = basic_blocks(program)
    assert spans[0][0] == 0 or any(start == 0 for start, _ in spans)
    previous_end = None
    covered = 0
    for start, end in spans:
        assert start < end
        if previous_end is not None:
            assert start == previous_end
        previous_end = end
        covered += end - start
    assert covered == len(program)


def test_blocks_have_at_most_one_terminator():
    program = compile_program(LOOP)
    from repro.emulator import decode
    code, _ = decode(program)
    for start, end in basic_blocks(program):
        interior = [pc for pc in range(start, end - 1)
                    if code[pc][0] in _TERMINATORS]
        assert interior == []


def test_generated_source_is_kept_for_debugging():
    program = compile_program(HELLO)
    compiled = threaded_code(program)
    assert compiled.source.startswith("def _make(")
    assert "while" not in compiled.source  # closures, not a loop


# -- cache payload (suite integration) -------------------------------------

def test_profile_cache_records_backend(tmp_path, monkeypatch):
    import json
    import os
    from repro.benchmarks.suite import run_program_cached
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    program = compile_program(HELLO)
    result = run_program_cached(program, "hello-")
    assert result.backend == "codegen"
    entries = [name for name in os.listdir(tmp_path)
               if name.endswith(".json")
               and not name.startswith("codegen-")]
    assert len(entries) == 1
    with open(tmp_path / entries[0]) as handle:
        payload = json.load(handle)
    assert payload["backend"] == "codegen"
    # A warm read reports the backend that produced the artefact.
    cached = run_program_cached(program, "hello-")
    assert cached.backend == "codegen"
    assert cached.counts == result.counts


def test_profile_cache_backend_mismatch_recomputes(tmp_path, monkeypatch):
    import json
    import os
    from repro.benchmarks.suite import run_program_cached
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    program = compile_program(HELLO)
    reference = run_program_cached(program, "hello-", backend="reference")
    # The cache key is backend-independent, but the provenance contract
    # is that the reported backend always matches the one requested: a
    # hit produced under a different backend is recomputed, not served.
    hit = run_program_cached(program, "hello-", backend="threaded")
    assert hit.backend == "threaded"
    assert hit.counts == reference.counts
    # ... and the artefact on disk now records the new producer.
    entries = [name for name in os.listdir(tmp_path)
               if name.endswith(".json")]
    assert len(entries) == 1
    with open(tmp_path / entries[0]) as handle:
        assert json.load(handle)["backend"] == "threaded"
