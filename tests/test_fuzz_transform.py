"""Fuzzing the superblock transform: for random queries over the standard
predicate library, the transformed program must behave identically to the
original — status, output, everything observable — and every artefact
must pass the independent static checker (lint, transform bisimulation,
region sanity, schedule legality)."""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    lint_program, check_transform, check_regions, check_schedule,
    off_live_names, NameLiveness, format_diagnostics)
from repro.analysis.cfg import Cfg
from repro.analysis.liveness import Liveness
from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import Emulator
from repro.compaction import vliw, schedule_region
from repro.compaction.transform import form_superblocks
from repro.intcode.optimize import optimize_program

LIBRARY = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
rev([], A, A).
rev([H|T], A, R) :- rev(T, [H|A], R).
mem(X, [X|_]).
mem(X, [_|T]) :- mem(X, T).
"""


def _plist(items):
    return "[%s]" % ",".join(str(i) for i in items)


@st.composite
def sources(draw):
    xs = draw(st.lists(st.integers(-5, 5), max_size=5))
    ys = draw(st.lists(st.integers(-5, 5), max_size=4))
    n = draw(st.integers(0, 5))
    body = draw(st.sampled_from([
        "app({xs}, {ys}, R), write(R)",
        "app(A, B, {xs}), write(A), write(B), nl, fail",
        "sel({n}, {xs}, R), write(R), nl, fail",
        "rev({xs}, [], R), write(R)",
        "mem({n}, {xs}), write(y)",
        "sel(X, {xs}, _), X > 0, write(X)",
    ])).format(xs=_plist(xs), ys=_plist(ys), n=n)
    return (LIBRARY
            + "main :- %s, nl.\n" % body
            + "main :- write(none), nl.\n")


@settings(max_examples=60, deadline=None)
@given(sources(), st.sampled_from([0, 24, 64]))
def test_transform_preserves_behaviour(source, budget):
    program = translate_module(compile_source(source))
    baseline = Emulator(program, max_steps=2_000_000).run()
    transform = form_superblocks(program, baseline.counts,
                                 baseline.taken, tail_dup_budget=budget)
    transformed = Emulator(transform.program, max_steps=4_000_000).run()
    assert transformed.status == baseline.status
    assert transformed.output == baseline.output
    # Static legality, independently re-derived by the checker.
    diagnostics = (lint_program(transform.program)
                   + check_transform(program, transform.program)
                   + check_regions(transform.program, transform.regions))
    assert diagnostics == [], format_diagnostics(diagnostics)


@settings(max_examples=40, deadline=None)
@given(sources())
def test_optimizer_preserves_behaviour(source):
    program = translate_module(compile_source(source))
    baseline = Emulator(program, max_steps=2_000_000).run()
    optimized, _ = optimize_program(program)
    result = Emulator(optimized, max_steps=2_000_000).run()
    assert result.status == baseline.status
    assert result.output == baseline.output
    assert result.steps <= baseline.steps


@settings(max_examples=20, deadline=None)
@given(sources(), st.sampled_from([2, 3]))
def test_schedules_statically_legal(source, n_units):
    """Every region schedule of a fuzzed program must satisfy the
    checker's independently re-derived dependence and resource rules."""
    program = translate_module(compile_source(source))
    baseline = Emulator(program, max_steps=2_000_000).run()
    transform = form_superblocks(program, baseline.counts, baseline.taken)
    compacted = transform.program
    config = vliw(n_units)
    liveness = Liveness(Cfg(compacted))
    checker_liveness = NameLiveness(compacted)
    for region in transform.regions:
        instructions = compacted.instructions[region.start:region.end]
        masks = {}
        for position in range(region.end - region.start):
            instruction = compacted.instructions[region.start + position]
            if instruction.is_branch:
                target = compacted.labels[instruction.label]
                masks[position] = liveness.live_in_mask(target)
        schedule = schedule_region(
            instructions, config, masks,
            lambda name: 1 << liveness.reg_id(name))
        diagnostics = check_schedule(
            instructions, schedule, config,
            off_live_names(compacted, region.start, region.end,
                           checker_liveness),
            region=(region.start, region.end))
        assert diagnostics == [], format_diagnostics(diagnostics)


@settings(max_examples=25, deadline=None)
@given(sources())
def test_transform_then_optimize_compose(source):
    program = translate_module(compile_source(source))
    baseline = Emulator(program, max_steps=2_000_000).run()
    transform = form_superblocks(program, baseline.counts,
                                 baseline.taken)
    optimized, _ = optimize_program(transform.program)
    result = Emulator(optimized, max_steps=4_000_000).run()
    assert result.status == baseline.status
    assert result.output == baseline.output
