"""Fuzzing the superblock transform: for random queries over the standard
predicate library, the transformed program must behave identically to the
original — status, output, everything observable."""

from hypothesis import given, settings, strategies as st

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import Emulator
from repro.compaction.transform import form_superblocks
from repro.intcode.optimize import optimize_program

LIBRARY = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
rev([], A, A).
rev([H|T], A, R) :- rev(T, [H|A], R).
mem(X, [X|_]).
mem(X, [_|T]) :- mem(X, T).
"""


def _plist(items):
    return "[%s]" % ",".join(str(i) for i in items)


@st.composite
def sources(draw):
    xs = draw(st.lists(st.integers(-5, 5), max_size=5))
    ys = draw(st.lists(st.integers(-5, 5), max_size=4))
    n = draw(st.integers(0, 5))
    body = draw(st.sampled_from([
        "app({xs}, {ys}, R), write(R)",
        "app(A, B, {xs}), write(A), write(B), nl, fail",
        "sel({n}, {xs}, R), write(R), nl, fail",
        "rev({xs}, [], R), write(R)",
        "mem({n}, {xs}), write(y)",
        "sel(X, {xs}, _), X > 0, write(X)",
    ])).format(xs=_plist(xs), ys=_plist(ys), n=n)
    return (LIBRARY
            + "main :- %s, nl.\n" % body
            + "main :- write(none), nl.\n")


@settings(max_examples=60, deadline=None)
@given(sources(), st.sampled_from([0, 24, 64]))
def test_transform_preserves_behaviour(source, budget):
    program = translate_module(compile_source(source))
    baseline = Emulator(program, max_steps=2_000_000).run()
    transform = form_superblocks(program, baseline.counts,
                                 baseline.taken, tail_dup_budget=budget)
    transformed = Emulator(transform.program, max_steps=4_000_000).run()
    assert transformed.status == baseline.status
    assert transformed.output == baseline.output


@settings(max_examples=40, deadline=None)
@given(sources())
def test_optimizer_preserves_behaviour(source):
    program = translate_module(compile_source(source))
    baseline = Emulator(program, max_steps=2_000_000).run()
    optimized, _ = optimize_program(program)
    result = Emulator(optimized, max_steps=2_000_000).run()
    assert result.status == baseline.status
    assert result.output == baseline.output
    assert result.steps <= baseline.steps


@settings(max_examples=25, deadline=None)
@given(sources())
def test_transform_then_optimize_compose(source):
    program = translate_module(compile_source(source))
    baseline = Emulator(program, max_steps=2_000_000).run()
    transform = form_superblocks(program, baseline.counts,
                                 baseline.taken)
    optimized, _ = optimize_program(transform.program)
    result = Emulator(optimized, max_steps=4_000_000).run()
    assert result.status == baseline.status
    assert result.output == baseline.output
