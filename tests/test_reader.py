"""Lexer and parser: token kinds, operator precedence, list syntax,
error reporting."""

import pytest

from repro.reader import tokenize, parse_term, parse_program, \
    ParseError, LexError
from repro.terms import Atom, Int, Var, Struct, term_to_string


# -- lexer --------------------------------------------------------------


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)][:-1]  # drop eof


def test_tokenize_atoms_vars_ints():
    assert kinds("foo Bar 42 _x") == [
        ("atom", "foo"), ("var", "Bar"), ("int", 42), ("var", "_x")]


def test_tokenize_symbolic_atoms():
    assert kinds("X =:= Y") == [("var", "X"), ("atom", "=:="),
                                ("var", "Y")]


def test_tokenize_quoted_atom_with_escape():
    assert kinds(r"'a b\n'") == [("atom", "a b\n")]


def test_tokenize_doubled_quote():
    assert kinds("'it''s'") == [("atom", "it's")]


def test_tokenize_char_code():
    assert kinds("0'a 0'\\n") == [("int", 97), ("int", 10)]


def test_tokenize_string_is_string_token():
    assert kinds('"ab"') == [("string", "ab")]


def test_line_comment_skipped():
    assert kinds("a % comment\nb") == [("atom", "a"), ("atom", "b")]


def test_block_comment_skipped():
    assert kinds("a /* x\ny */ b") == [("atom", "a"), ("atom", "b")]


def test_clause_end_detected():
    tokens = tokenize("a.")
    assert tokens[1].kind == "end"


def test_dot_inside_symbolic_atom():
    assert kinds("X =.. L")[1] == ("atom", "=..")


def test_unterminated_quote_raises_with_line():
    with pytest.raises(LexError):
        tokenize("'abc")


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_layout_before_tracking():
    tokens = tokenize("f (x)")
    assert tokens[1].layout_before  # '(' preceded by a space


# -- parser -------------------------------------------------------------


def test_parse_functor_application():
    term = parse_term("f(a, B, 1)")
    assert isinstance(term, Struct)
    assert term.indicator == ("f", 3)
    assert isinstance(term.args[0], Atom)
    assert isinstance(term.args[1], Var)
    assert isinstance(term.args[2], Int)


def test_layout_blocks_functor_application():
    term = parse_term("- (1)")
    assert isinstance(term, Struct) and term.indicator == ("-", 1)


def test_operator_precedence_multiplication_binds_tighter():
    term = parse_term("1 + 2 * 3")
    assert term.name == "+"
    assert term.args[1].name == "*"


def test_left_associativity_of_minus():
    term = parse_term("1 - 2 - 3")
    assert term.name == "-"
    assert term.args[0].name == "-"
    assert term.args[1].value == 3


def test_right_associativity_of_conjunction():
    term = parse_term("(a , b , c)")
    assert term.indicator == (",", 2)
    assert term.args[1].indicator == (",", 2)


def test_clause_neck_priority():
    term = parse_term("h :- a, b")
    assert term.indicator == (":-", 2)
    assert term.args[1].indicator == (",", 2)


def test_negative_integer_literal():
    term = parse_term("-5")
    assert isinstance(term, Int) and term.value == -5


def test_unary_minus_on_variable():
    term = parse_term("-X")
    assert term.indicator == ("-", 1)


def test_list_sugar():
    term = parse_term("[1, 2 | T]")
    assert term.indicator == (".", 2)
    assert term.args[1].args[0].value == 2
    assert isinstance(term.args[1].args[1], Var)


def test_empty_list_is_nil_atom():
    assert parse_term("[]") == Atom("[]")


def test_nested_list_rendering_roundtrip():
    text = "[a,[b,c],[]]"
    assert term_to_string(parse_term(text)) == text


def test_string_becomes_code_list():
    term = parse_term('"ab"')
    assert term_to_string(term) == "[97,98]"


def test_disjunction_bar_alias():
    term = parse_term("(a | b)")
    assert term.indicator == (";", 2)


def test_if_then_else_shape():
    term = parse_term("(c -> t ; e)")
    assert term.indicator == (";", 2)
    assert term.args[0].indicator == ("->", 2)


def test_variables_shared_within_clause():
    term = parse_term("f(X, X)")
    assert term.args[0] is term.args[1]


def test_anonymous_variables_are_fresh():
    term = parse_term("f(_, _)")
    assert term.args[0] is not term.args[1]


def test_parse_program_multiple_clauses():
    clauses = parse_program("a. b :- c. d(1).")
    assert len(clauses) == 3


def test_variables_not_shared_across_clauses():
    clauses = parse_program("f(X). g(X).")
    assert clauses[0].args[0] is not clauses[1].args[0]


def test_curly_braces():
    term = parse_term("{a, b}")
    assert term.indicator == ("{}", 1)


def test_missing_close_paren_raises():
    with pytest.raises(ParseError):
        parse_term("f(a, b")


def test_missing_clause_dot_raises():
    with pytest.raises(ParseError):
        parse_program("a :- b")


def test_operator_priority_limit_in_arguments():
    # A bare ',' at priority 1000 cannot appear in an argument (999).
    term = parse_term("f((a, b))")
    assert term.args[0].indicator == (",", 2)


def test_comparison_is_xfx_non_associative():
    with pytest.raises(ParseError):
        parse_term("1 < 2 < 3")
