"""The evaluation service: request validation, admission, execution.

Drives a real :class:`ServiceThread` over HTTP (loopback) and pins the
robustness surface end to end: health/readiness, per-op results
byte-identical to direct computation, whole-request memoisation,
structured 4xx/5xx error mapping, deadline enforcement, queue-full
load shedding with ``Retry-After``, the circuit breaker state machine
(unit-tested with a fake clock), and graceful drain.
"""

import http.client
import json
import os
import shutil
import tempfile
import threading
import time

import pytest

from repro.evaluation.cache import CacheStore
from repro.evaluation.parallel import EvaluationEngine
from repro.serve import CircuitBreaker, ServiceConfig, ServiceThread
from repro.serve.ops import (
    canonical_json, compute_result, parse_request, request_label)
from repro.testing import faults

BENCH = "divide10"


def request(port, method, path, body=None, timeout=180):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        data = None if body is None else json.dumps(body)
        connection.request(method, path, body=data)
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload, dict(response.getheaders())
    finally:
        connection.close()


@pytest.fixture(scope="module")
def server():
    patcher = pytest.MonkeyPatch()
    tmp = tempfile.mkdtemp(prefix="repro-serve-test-")
    patcher.setenv("REPRO_CACHE_DIR", os.path.join(tmp, "suite"))
    patcher.delenv(faults.ENV_SPEC, raising=False)
    patcher.delenv(faults.ENV_STATE, raising=False)
    patcher.delenv("REPRO_CACHE_SHARDS", raising=False)
    config = ServiceConfig(jobs=1, shards=4, seed=7,
                           cache_root=os.path.join(tmp, "cas"),
                           queue_limit=16, batch_max=4)
    try:
        with ServiceThread(config) as thread:
            yield thread
    finally:
        patcher.undo()
        shutil.rmtree(tmp, ignore_errors=True)


# --------------------------------------------------------------------------
# Health and readiness.

def test_healthz_reports_ok(server):
    status, payload, _ = request(server.port, "GET", "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["draining"] is False
    assert payload["uptime_s"] >= 0


def test_readyz_reports_queue_and_cache_state(server):
    status, payload, _ = request(server.port, "GET", "/readyz")
    assert status == 200
    assert payload["ready"] is True
    assert payload["queue_limit"] == 16
    assert "cache" in payload and "supervisor" in payload


# --------------------------------------------------------------------------
# Operations: served results must be byte-identical to direct
# computation, and repeats must come from the result cache.

def test_compile_evaluate_match_direct_computation(server, tmp_path):
    engine = EvaluationEngine(jobs=1,
                              store=CacheStore(str(tmp_path / "ref")))
    try:
        for op in ("compile", "evaluate"):
            body = {"benchmark": BENCH, "configs": ["seq"]}
            spec, _ = parse_request(op, body)
            expected = canonical_json(compute_result(spec, engine))
            status, payload, _ = request(server.port, "POST",
                                         "/v1/" + op, body)
            assert status == 200, payload
            assert payload["ok"] is True
            assert canonical_json(payload["result"]) == expected
    finally:
        engine.close()


def test_repeat_request_is_served_from_cache(server):
    body = {"benchmark": BENCH, "configs": ["seq"]}
    first = request(server.port, "POST", "/v1/evaluate", body)
    second = request(server.port, "POST", "/v1/evaluate", body)
    assert first[0] == second[0] == 200
    assert second[1]["meta"]["cached"] is True
    assert canonical_json(first[1]["result"]) \
        == canonical_json(second[1]["result"])


def test_spelling_variants_share_one_cache_entry(server):
    # Sorted/de-duplicated configs hash identically however spelt.
    noisy = {"benchmark": BENCH, "configs": ["seq", "seq"]}
    status, payload, _ = request(server.port, "POST", "/v1/evaluate",
                                 noisy)
    assert status == 200
    assert payload["meta"]["cached"] is True


# --------------------------------------------------------------------------
# The query op: or-parallel goal enumeration over HTTP.

def test_query_answers_match_the_sequential_oracle(server):
    from repro.benchmarks.suite import resolve_program
    from repro.interp.orparallel import sequential_answers
    status, payload, _ = request(server.port, "POST", "/v1/query",
                                 {"benchmark": BENCH})
    assert status == 200, payload
    result = payload["result"]
    oracle = sequential_answers(resolve_program(BENCH).source, "main",
                                limit=64)
    assert result["answers"] == oracle["answers"]
    assert result["output"] == oracle["output"]
    assert result["count"] == oracle["count"]
    assert result["truncated"] == oracle["truncated"]


def test_query_results_are_byte_identical_across_or_jobs(server):
    """``or_jobs`` shapes execution, never the payload: no provenance
    field may leak into the result."""
    results = {}
    for or_jobs in (1, 4):
        status, payload, _ = request(
            server.port, "POST", "/v1/query",
            {"benchmark": BENCH, "or_jobs": or_jobs})
        assert status == 200, payload
        results[or_jobs] = canonical_json(payload["result"])
        assert "mode" not in payload["result"]
        assert "branches" not in payload["result"]
    assert results[1] == results[4]


def test_repeat_query_is_served_from_cache(server):
    body = {"benchmark": BENCH, "goal": "main", "limit": 8}
    first = request(server.port, "POST", "/v1/query", body)
    second = request(server.port, "POST", "/v1/query", body)
    assert first[0] == second[0] == 200
    assert second[1]["meta"]["cached"] is True
    assert canonical_json(first[1]["result"]) \
        == canonical_json(second[1]["result"])


@pytest.mark.parametrize("body,fragment", [
    ({"benchmark": BENCH, "goal": "  "}, "'goal' must be"),
    ({"benchmark": BENCH, "limit": 0}, "'limit' must be"),
    ({"benchmark": BENCH, "limit": True}, "'limit' must be"),
    ({"benchmark": BENCH, "or_jobs": 0}, "'or_jobs' must be"),
    ({"benchmark": BENCH, "configs": ["seq"]}, "unknown request field"),
], ids=["goal", "limit", "bool-limit", "or-jobs", "configs"])
def test_invalid_query_requests_are_400(server, body, fragment):
    status, payload, _ = request(server.port, "POST", "/v1/query",
                                 body)
    assert status == 400
    assert fragment in payload["error"]


# --------------------------------------------------------------------------
# Error mapping.

@pytest.mark.parametrize("body,fragment", [
    ({"benchmark": "no-such-benchmark"}, "unknown benchmark"),
    ({"benchmark": BENCH, "configs": ["warp9"]},
     "unknown machine configuration"),
    ({"benchmark": BENCH, "configs": []}, "non-empty list"),
    ({"benchmark": BENCH, "tail_dup_budget": -1}, "non-negative"),
    ({"benchmark": BENCH, "deadline": 0}, "positive number"),
    ({"benchmark": BENCH, "frobnicate": 1}, "unknown request field"),
    ({}, "'benchmark' must be"),
], ids=["benchmark", "config", "empty-configs", "budget", "deadline",
        "field", "missing"])
def test_invalid_requests_are_400(server, body, fragment):
    status, payload, _ = request(server.port, "POST", "/v1/evaluate",
                                 body)
    assert status == 400
    assert payload["ok"] is False
    assert fragment in payload["error"]


def test_malformed_json_body_is_400(server):
    connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                            timeout=60)
    try:
        connection.request("POST", "/v1/evaluate", body="{nope")
        response = connection.getresponse()
        payload = json.loads(response.read().decode())
    finally:
        connection.close()
    assert response.status == 400
    assert "invalid JSON" in payload["error"]


def test_unknown_paths_and_methods(server):
    assert request(server.port, "GET", "/nope")[0] == 404
    assert request(server.port, "POST", "/v1/transmogrify",
                   {"benchmark": BENCH})[0] == 404
    assert request(server.port, "GET", "/v1/evaluate")[0] == 405
    assert request(server.port, "POST", "/healthz", {})[0] == 405


def test_expired_deadline_is_504(server):
    body = {"benchmark": BENCH, "configs": ["seq"],
            "deadline": 1e-9}
    status, payload, _ = request(server.port, "POST", "/v1/evaluate",
                                 body)
    assert status == 504
    assert "deadline" in payload["error"]


def test_metrics_endpoint_exposes_counters(server):
    status, payload, _ = request(server.port, "GET", "/metrics")
    assert status == 200
    assert payload["counters"]["serve.ok"] >= 1
    assert payload["counters"]["serve.cache_hits"] >= 1
    assert payload["cache"]["shards"] == 4
    assert "supervisor" in payload


# --------------------------------------------------------------------------
# Load shedding: a full admission queue answers 429 + Retry-After.

def test_queue_full_sheds_with_retry_after(tmp_path):
    config = ServiceConfig(jobs=1, shards=1, queue_limit=1,
                           batch_max=1, retry_after=0.5,
                           cache_root=str(tmp_path / "cas"))
    statuses = []
    lock = threading.Lock()
    with faults.injected("serve.request=hang:1:1.5"):
        with ServiceThread(config) as thread:
            body = {"benchmark": BENCH, "configs": ["seq"]}

            def post():
                outcome = request(thread.port, "POST", "/v1/compile",
                                  body)
                with lock:
                    statuses.append(outcome)

            # First request occupies the executor (hang fault sleeps
            # inside it); the flood then overflows the queue of 1.
            leader = threading.Thread(target=post)
            leader.start()
            time.sleep(0.4)
            flood = [threading.Thread(target=post) for _ in range(6)]
            for worker in flood:
                worker.start()
            for worker in [leader] + flood:
                worker.join(timeout=120)
    shed = [outcome for outcome in statuses if outcome[0] == 429]
    served = [outcome for outcome in statuses if outcome[0] == 200]
    assert shed, "expected at least one 429 under overload"
    assert served, "expected surviving requests to be served"
    for _, payload, headers in shed:
        assert payload["error"] == "admission queue full"
        assert headers.get("Retry-After") == "0.5"


# --------------------------------------------------------------------------
# Graceful drain.

def test_drain_stops_listener_and_joins(tmp_path):
    config = ServiceConfig(jobs=1, shards=1,
                           cache_root=str(tmp_path / "cas"))
    thread = ServiceThread(config)
    with thread:
        port = thread.port
        assert request(port, "GET", "/healthz")[0] == 200
        thread.stop(timeout=120)
        assert not thread._thread.is_alive()
    with pytest.raises(OSError):
        request(port, "GET", "/healthz", timeout=5)


# --------------------------------------------------------------------------
# Circuit breaker state machine (fake clock; no service needed).

class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_at_threshold_and_recovers():
    clock = _Clock()
    breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.trips == 1
    assert not breaker.allow()              # still cooling down
    clock.now = 10.0
    assert breaker.allow()                  # the half-open probe
    assert breaker.state == "half-open"
    assert not breaker.allow()              # exactly one probe
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.failures == 0
    assert breaker.allow()


def test_breaker_failed_probe_reopens():
    clock = _Clock()
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == "open"
    clock.now = 5.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.trips == 2               # every open transition counts
    clock.now = 9.0
    assert not breaker.allow()              # cooldown restarted
    assert breaker.snapshot() == {"state": "open", "failures": 2,
                                  "trips": 2}


def test_breaker_multi_count_failure_trips_in_one_call():
    breaker = CircuitBreaker(threshold=3, cooldown=1.0, clock=_Clock())
    breaker.record_failure(3)
    assert breaker.state == "open"


# --------------------------------------------------------------------------
# Request canonicalisation (pure functions).

def test_parse_request_sorts_and_deduplicates_configs():
    spec, deadline = parse_request("evaluate", {
        "benchmark": BENCH, "configs": ["vliw3", "seq", "vliw3"],
        "deadline": 30})
    assert spec["configs"] == ["seq", "vliw3"]
    assert spec["tail_dup_budget"] == 48
    assert deadline == 30.0
    assert request_label(spec) == "serve/evaluate/%s" % BENCH


def test_canonical_json_is_stable_across_transport_roundtrip():
    # Int dict keys become strings in transit; the canonical encoding
    # must agree with its own round-tripped self (ordering included).
    value = {"blocks": {1: "a", 10: "b", 2: "c"}}
    encoded = canonical_json(value)
    assert canonical_json(json.loads(encoded)) == encoded
    assert encoded.index('"1"') < encoded.index('"10"') \
        < encoded.index('"2"')


# --------------------------------------------------------------------------
# Load-test scaffolding (pure pieces; the full run is chaos-marked).

def test_mixed_templates_cover_every_op_per_benchmark():
    from repro.serve.loadtest import mixed_templates
    templates = mixed_templates(("conc30",), ("seq",))
    assert [t["op"] for t in templates] \
        == ["compile", "evaluate", "verify", "analyze"]
    assert all(t["body"] == {"benchmark": "conc30",
                             "configs": ["seq"]} for t in templates)


def test_percentiles_pick_rank_from_sorted_values():
    from repro.serve.loadtest import _percentile
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert _percentile(values, 0.5) == 3.0
    assert _percentile(values, 0.99) == 5.0
    assert _percentile([], 0.5) == 0.0


def test_published_serve_bench_document_validates():
    from repro.serve.loadtest import validate_serve_bench
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "results", "BENCH_serve.json")
    document = json.load(open(path))
    assert validate_serve_bench(document) == []
    assert document["wrong_answers"] == 0
    assert document["requests"] >= 2000
    assert document["warm_hit_rate"] >= 0.9


def test_validate_serve_bench_rejects_wrong_answers():
    from repro.serve.loadtest import validate_serve_bench
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "results", "BENCH_serve.json")
    document = json.load(open(path))
    document["wrong_answers"] = 1
    problems = validate_serve_bench(document)
    assert any("wrong" in problem for problem in problems)
    assert validate_serve_bench({"schema": 99}) != []
