"""The pluggable cache store backends.

Pins the robustness contract of :mod:`repro.evaluation.cache`: sharded
placement and per-shard locking, corruption quarantine, the
re-check-under-lock recovery path (a repaired entry must be served,
not deleted), size-budgeted LRU eviction, single-flight memoisation
(one compute per key under concurrency, races counted), and the
bounded put-lock wait that prevents cross-slot deadlock.
"""

import json
import os
import threading
import time

import pytest

from repro.evaluation.cache import (
    CacheStore, ShardedCacheStore, SHARDS_ENV, open_store)
from repro.evaluation import cache as cache_module
from repro.evaluation.parallel import memoised
from repro.testing import faults


@pytest.fixture
def store(tmp_path):
    return CacheStore(str(tmp_path / "cache"))


@pytest.fixture
def sharded(tmp_path):
    return ShardedCacheStore(str(tmp_path / "cache"), shards=4)


# --------------------------------------------------------------------------
# Round trips and placement.

def test_roundtrip_and_miss_counting(store):
    key = store.key("cell", {"a": 1})
    assert store.get(key) is None
    store.put(key, {"value": 41})
    assert store.get(key) == {"value": 41}
    assert store.stats() == {"hits": 1, "misses": 1, "corrupt": 0}


def test_key_is_sensitive_to_kind_and_components(store):
    base = store.key("cell", {"a": 1})
    assert store.key("profile", {"a": 1}) != base
    assert store.key("cell", {"a": 2}) != base
    assert store.key("cell", {"a": 1}) == base


def test_sharded_roundtrip_places_entries_in_shard_dirs(sharded):
    keys = [sharded.key("cell", {"n": n}) for n in range(16)]
    for n, key in enumerate(keys):
        sharded.put(key, {"n": n})
    for n, key in enumerate(keys):
        assert sharded.get(key) == {"n": n}
        path = sharded.path(key)
        shard = os.path.basename(os.path.dirname(path))
        assert shard == "shard-%02x" % sharded.shard_of(key)
    # With 16 distinct keys over 4 shards, placement must spread: at
    # least two shard directories exist (crc32 would have to collide
    # 16 keys into one bucket otherwise).
    assert len(sharded._entry_dirs()) >= 2


def test_sharded_and_plain_store_use_same_keys(tmp_path):
    plain = CacheStore(str(tmp_path / "a"))
    shard = ShardedCacheStore(str(tmp_path / "b"), shards=8)
    assert plain.key("cell", {"x": 1}) == shard.key("cell", {"x": 1})


def test_open_store_honours_environment(tmp_path, monkeypatch):
    monkeypatch.delenv(SHARDS_ENV, raising=False)
    assert type(open_store(str(tmp_path))) is CacheStore
    monkeypatch.setenv(SHARDS_ENV, "8")
    picked = open_store(str(tmp_path))
    assert isinstance(picked, ShardedCacheStore)
    assert picked.shards == 8
    # Explicit argument beats the environment; nonsense is ignored.
    assert type(open_store(str(tmp_path), shards=1)) is CacheStore
    monkeypatch.setenv(SHARDS_ENV, "lots")
    assert type(open_store(str(tmp_path))) is CacheStore


# --------------------------------------------------------------------------
# Corruption: discard vs quarantine, and recovery under the lock.

def test_corrupt_entry_is_a_miss_then_recomputable(store):
    key = store.key("cell", {"a": 1})
    store.put(key, {"value": 1})
    faults.corrupt_file(store.path(key))
    assert store.get(key) is None
    assert store.corrupt == 1
    assert not os.path.exists(store.path(key))
    store.put(key, {"value": 2})
    assert store.get(key) == {"value": 2}


def test_sharded_corrupt_entry_is_quarantined_not_unlinked(sharded):
    key = sharded.key("cell", {"a": 1})
    sharded.put(key, {"value": 1})
    faults.corrupt_file(sharded.path(key))
    assert sharded.get(key) is None
    assert sharded.quarantined == 1
    assert not os.path.exists(sharded.path(key))
    names = os.listdir(os.path.join(sharded.root, "quarantine"))
    assert names == [os.path.basename(sharded.path(key))]


def test_recovery_recheck_serves_entry_repaired_under_lock(
        store, monkeypatch):
    # A reader sees damage, but by the time it holds the lock a
    # concurrent writer has repaired the entry: the re-check must
    # serve the repaired payload and *not* delete the fresh entry.
    key = store.key("cell", {"a": 1})
    store.put(key, {"value": 99})
    real_read = CacheStore._read
    calls = []

    def flaky_read(self, path):
        calls.append(path)
        if len(calls) == 1:
            raise cache_module._CorruptEntry("simulated first read")
        return real_read(self, path)

    monkeypatch.setattr(CacheStore, "_read", flaky_read)
    assert store.get(key) == {"value": 99}
    assert len(calls) == 2                  # optimistic + under-lock
    assert store.corrupt == 0
    assert store.hits == 1
    assert os.path.exists(store.path(key))


def test_checksum_mismatch_detected_not_just_bad_json(store):
    key = store.key("cell", {"a": 1})
    store.put(key, {"value": 1})
    # Valid JSON, wrong checksum: the payload was tampered with.
    entry = json.load(open(store.path(key)))
    entry["payload"] = {"value": 666}
    with open(store.path(key), "w") as handle:
        json.dump(entry, handle)
    assert store.get(key) is None
    assert store.corrupt == 1


def test_cache_shard_fault_corrupts_then_heals(sharded, tmp_path):
    key = sharded.key("cell", {"a": 1})
    sharded.put(key, {"value": 7})
    with faults.injected("cache.shard=corrupt:1"):
        assert sharded.get(key) is None     # injected damage -> miss
        sharded.put(key, {"value": 7})      # recompute heals
        assert sharded.get(key) == {"value": 7}
    assert sharded.quarantined == 1


def test_cache_shard_error_fault_reads_as_miss(sharded):
    key = sharded.key("cell", {"a": 1})
    sharded.put(key, {"value": 7})
    with faults.injected("cache.shard=error:1"):
        assert sharded.get(key) is None     # transient I/O -> miss
        assert sharded.get(key) == {"value": 7}   # next read is fine
    assert os.path.exists(sharded.path(key))


# --------------------------------------------------------------------------
# LRU eviction under a byte budget.

def test_gc_evicts_oldest_entries_down_to_budget(sharded):
    keys = [sharded.key("cell", {"n": n}) for n in range(6)]
    for n, key in enumerate(keys):
        sharded.put(key, {"n": n, "pad": "x" * 64})
    now = time.time()
    for age, key in enumerate(reversed(keys)):
        os.utime(sharded.path(key), (now - age * 60, now - age * 60))
    # keys[0] is now the oldest, keys[5] the freshest.
    sizes = {key: os.stat(sharded.path(key)).st_size for key in keys}
    budget = sum(sizes[key] for key in keys[2:])
    summary = sharded.gc(budget)
    assert summary["removed"] == 2
    assert summary["kept"] == 4
    assert summary["kept_bytes"] <= budget
    assert sharded.evictions == 2
    survivors = [key for key in keys
                 if os.path.exists(sharded.path(key))]
    assert survivors == keys[2:]


def test_gc_purges_quarantine_even_within_budget(sharded):
    key = sharded.key("cell", {"a": 1})
    sharded.put(key, {"value": 1})
    faults.corrupt_file(sharded.path(key))
    assert sharded.get(key) is None
    assert sharded.usage()["quarantined_files"] == 1
    summary = sharded.gc(10 ** 9)
    assert summary["removed"] == 1          # the quarantined file
    assert sharded.usage()["quarantined_files"] == 0
    assert sharded.evictions == 0           # purge is not an eviction


def test_hit_refreshes_mtime_so_lru_spares_hot_entries(store):
    hot = store.key("cell", {"hot": True})
    cold = store.key("cell", {"cold": True})
    store.put(hot, {"pad": "x" * 64})
    store.put(cold, {"pad": "y" * 64})
    stale = time.time() - 3600
    os.utime(store.path(hot), (stale, stale))
    os.utime(store.path(cold), (stale + 1, stale + 1))
    assert store.get(hot) is not None       # hit refreshes mtime
    budget = os.stat(store.path(hot)).st_size
    store.gc(budget)
    assert os.path.exists(store.path(hot))
    assert not os.path.exists(store.path(cold))


def test_usage_reports_entries_and_bytes(sharded):
    assert sharded.usage()["entries"] == 0
    for n in range(3):
        sharded.put(sharded.key("cell", {"n": n}), {"n": n})
    usage = sharded.usage()
    assert usage["entries"] == 3
    assert usage["bytes"] > 0
    assert usage["shards"] == 4


# --------------------------------------------------------------------------
# Single-flight memoisation.

def test_memoised_computes_once_then_serves_cached(store):
    calls = []

    def compute():
        calls.append(1)
        return {"answer": 42}

    first = memoised("cell", {"q": 1}, compute, store=store)
    second = memoised("cell", {"q": 1}, compute, store=store)
    assert first == second == {"answer": 42}
    assert len(calls) == 1


def test_memoised_use_cache_false_always_recomputes(store):
    calls = []

    def compute():
        calls.append(1)
        return {"answer": len(calls)}

    memoised("cell", {"q": 1}, compute, store=store)
    fresh = memoised("cell", {"q": 1}, compute, store=store,
                     use_cache=False)
    assert fresh == {"answer": 2}
    assert len(calls) == 2


def test_memoised_single_flight_across_stores(tmp_path):
    # Two threads, two store objects (as two processes would have),
    # one key: exactly one compute runs; the loser of the lock race
    # serves the winner's result and counts a race.
    root = str(tmp_path / "cache")
    first, second = CacheStore(root), CacheStore(root)
    entered = threading.Event()
    release = threading.Event()
    calls = []
    results = {}

    def slow_compute():
        calls.append("slow")
        entered.set()
        assert release.wait(timeout=10.0)
        return {"answer": 42}

    def fast_compute():
        calls.append("fast")
        return {"answer": 42}

    def leader():
        results["leader"] = memoised(
            "cell", {"q": 1}, slow_compute, store=first)

    thread = threading.Thread(target=leader)
    thread.start()
    assert entered.wait(timeout=10.0)
    # The leader is inside compute, holding the key lock.  A follower
    # misses, then blocks on the lock; once the leader publishes, the
    # follower's second look finds the entry without computing.
    follower = threading.Thread(target=lambda: results.update(
        follower=memoised("cell", {"q": 1}, fast_compute,
                          store=second)))
    follower.start()
    time.sleep(0.2)                 # let the follower reach the lock
    release.set()
    thread.join(timeout=10.0)
    follower.join(timeout=10.0)
    assert results["leader"] == results["follower"] == {"answer": 42}
    assert calls == ["slow"]        # single flight: one compute total
    assert second.races == 1


def test_put_under_held_foreign_lock_counts_contention(tmp_path):
    # A different *object* holds the slot lock (as another process
    # would): put must note contention, wait, and still publish once
    # the lock frees.
    root = str(tmp_path / "cache")
    writer, blocker = CacheStore(root), CacheStore(root)
    key = writer.key("cell", {"a": 1})
    foreign = blocker.lock_for(key)
    foreign.acquire()

    def release_soon():
        time.sleep(0.3)
        foreign.release()

    thread = threading.Thread(target=release_soon)
    thread.start()
    writer.put(key, {"value": 1})
    thread.join()
    assert writer.contention == 1
    assert writer.get(key) == {"value": 1}


def test_put_lock_timeout_falls_back_to_unlocked_write(
        tmp_path, monkeypatch):
    monkeypatch.setattr(cache_module, "PUT_LOCK_TIMEOUT", 0.2)
    root = str(tmp_path / "cache")
    writer, blocker = CacheStore(root), CacheStore(root)
    key = writer.key("cell", {"a": 1})
    blocker.lock_for(key).acquire()        # never released: wedged peer
    try:
        started = time.monotonic()
        writer.put(key, {"value": 1})      # must not deadlock
        assert time.monotonic() - started < 5.0
        assert writer.get(key) == {"value": 1}
        assert writer.contention == 1
    finally:
        blocker.lock_for(key).release()


def test_lock_for_returns_same_object_per_slot(store):
    key = store.key("cell", {"a": 1})
    assert store.lock_for(key) is store.lock_for(key)


def test_counters_superset_of_stats(sharded):
    sharded.get(sharded.key("cell", {"a": 1}))
    counters = sharded.counters()
    stats = sharded.stats()
    assert set(stats) == {"hits", "misses", "corrupt"}
    for name, value in stats.items():
        assert counters[name] == value
    for name in ("quarantined", "evictions", "races", "contention"):
        assert name in counters
    assert counters["shards"] == 4


# --------------------------------------------------------------------------
# The or-parallel answer-memo table: entries must survive both
# backends, corruption must quarantine-and-recompute, and the store's
# per-kind counters must reconcile with the trace counters.

ORP_SOURCE = """
color(red). color(green). color(blue).
pair(X, Y) :- color(X), color(Y).
"""


def _memo_engine(store):
    from repro.evaluation.parallel import EvaluationEngine
    from repro.evaluation.supervisor import SupervisorPolicy
    return EvaluationEngine(
        jobs=2, store=store,
        policy=SupervisorPolicy(max_attempts=2, deadline=60.0,
                                backoff_base=0.01, backoff_cap=0.05,
                                seed=1992, poll=0.02))


def _memo_entries(root):
    """Every persisted cache entry under *root* (both layouts)."""
    paths = []
    for dirpath, _, names in os.walk(str(root)):
        if os.path.basename(dirpath) == "quarantine":
            continue
        paths.extend(os.path.join(dirpath, name) for name in names
                     if name.startswith("cas-")
                     and name.endswith(".json"))
    return sorted(paths)


@pytest.mark.parametrize("backend", ["plain", "sharded"])
def test_orparallel_memo_roundtrips_through_both_backends(tmp_path,
                                                          backend):
    from repro.interp.orparallel import or_solutions
    root = tmp_path / "memo"
    if backend == "plain":
        store = CacheStore(str(root))
    else:
        store = ShardedCacheStore(str(root), shards=4)
    with _memo_engine(store) as engine:
        cold = or_solutions(ORP_SOURCE, "pair(X, Y)", engine=engine)
        assert cold["mode"] == "parallel"
        # call-scope entry + one entry per branch
        assert len(_memo_entries(root)) == 1 + cold["branches"]
        # A second store over the same directory (a later process)
        # serves the same bytes without recomputing.
        if backend == "plain":
            reopened = CacheStore(str(root))
        else:
            reopened = ShardedCacheStore(str(root), shards=4)
        warm = or_solutions(ORP_SOURCE, "pair(X, Y)", engine=engine,
                            store=reopened)
        assert warm["mode"] == "memo"
        assert warm["answers"] == cold["answers"]
        assert warm["output"] == cold["output"]


def test_corrupt_orparallel_memo_is_quarantined_and_recomputed(
        tmp_path):
    from repro.interp.orparallel import or_solutions, sequential_answers
    root = tmp_path / "memo"
    store = ShardedCacheStore(str(root), shards=4)
    with _memo_engine(store) as engine:
        cold = or_solutions(ORP_SOURCE, "pair(X, Y)", engine=engine)
        for path in _memo_entries(root):
            faults.corrupt_file(path)
        recomputed = or_solutions(ORP_SOURCE, "pair(X, Y)",
                                  engine=engine)
    # The damaged entries were misses, not answers: the query fell
    # through to a fresh parallel run with the oracle's answers...
    assert recomputed["mode"] == "parallel"
    oracle = sequential_answers(ORP_SOURCE, "pair(X, Y)")
    assert recomputed["answers"] == oracle["answers"]
    assert recomputed["output"] == oracle["output"]
    assert recomputed["answers"] == cold["answers"]
    # ...every damaged entry was quarantined for post-mortem, and the
    # recomputed entries are readable again.
    assert store.corrupt >= 1 + cold["branches"]
    assert store.quarantined >= 1 + cold["branches"]
    assert os.listdir(os.path.join(store.root, "quarantine"))
    assert len(_memo_entries(root)) == 1 + cold["branches"]


def test_orparallel_kind_stats_reconcile_with_trace_counters(
        tmp_path, traced_run):
    from repro.interp.orparallel import MEMO_KIND, or_solutions
    store = CacheStore(str(tmp_path / "memo"))
    with _memo_engine(store) as engine:
        or_solutions(ORP_SOURCE, "pair(X, Y)", engine=engine)
        or_solutions(ORP_SOURCE, "pair(X, Y)", engine=engine)
    counters = traced_run.metrics.counters
    stats = store.kind_stats(MEMO_KIND)
    # Call scope: one traced miss then one traced hit.
    assert counters["orparallel.memo.misses"] == 1
    assert counters["orparallel.memo.hits"] == 1
    # Branch scope: each branch was a cold miss; none re-dispatched.
    assert counters["orparallel.branch_memo.misses"] == 3
    assert "orparallel.branch_memo.hits" not in counters
    # The store's per-kind ledger tells the same story: one hit (the
    # warm call), misses for the cold call + its three branches (the
    # single-flight re-check under the lock may add more misses, never
    # hits).
    assert stats["hits"] == counters["orparallel.memo.hits"]
    assert stats["misses"] >= (counters["orparallel.memo.misses"]
                               + counters["orparallel.branch_memo"
                                          ".misses"])
    assert store.corrupt == 0
