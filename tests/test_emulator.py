"""ICI emulator: opcode semantics checked with hand-assembled programs."""

import pytest

from repro.terms import SymbolTable, tags
from repro.intcode.program import Builder
from repro.intcode import layout
from repro.emulator import Emulator, EmulatorError


def build(body):
    """Assemble a tiny program: body(builder) then halt."""
    builder = Builder(SymbolTable())
    builder.label("$start")
    body(builder)
    builder.halt(0)
    return builder.finish()


def _step_all(program):
    """Final data memory after running *program* on the debug stepper."""
    from repro.emulator.debug import DebugMachine
    machine = DebugMachine(program)
    machine.run()
    return machine.mem


HEAP = layout.HEAP_BASE


def probe(body_ops):
    """Run body then return final memory (body stores results itself)."""
    def body(b):
        body_ops(b)
    return _step_all(build(body))


def test_ldi_st_roundtrip():
    def ops(b):
        r = b.fresh_reg()
        b.ldi_int(r, 77)
        b.st(r, "H", 0)
    mem = probe(ops)
    assert mem[HEAP] == tags.pack(77, tags.TINT)


def test_arith_ops_tag_result_as_int():
    def ops(b):
        x, y, r = b.fresh_reg(), b.fresh_reg(), b.fresh_reg()
        b.ldi_int(x, 10)
        b.ldi_int(y, 3)
        for index, op in enumerate(
                ["add", "sub", "mul", "div", "mod", "and", "or", "xor"]):
            b.alu(op, r, x, rb=y)
            b.st(r, "H", index)
    mem = probe(ops)
    values = [tags.value_of(mem[HEAP + i]) for i in range(8)]
    assert values == [13, 7, 30, 3, 1, 10 & 3, 10 | 3, 10 ^ 3]
    assert all(tags.tag_of(mem[HEAP + i]) == tags.TINT for i in range(8))


def test_division_truncates_toward_zero():
    def ops(b):
        x, y, r = b.fresh_reg(), b.fresh_reg(), b.fresh_reg()
        b.ldi_int(x, -7)
        b.ldi_int(y, 2)
        b.alu("div", r, x, rb=y)
        b.st(r, "H", 0)
        b.alu("mod", r, x, rb=y)
        b.st(r, "H", 1)
    mem = probe(ops)
    assert tags.value_of(mem[HEAP]) == -3
    assert tags.value_of(mem[HEAP + 1]) == -1


def test_lea_sets_tag_and_offsets_value():
    def ops(b):
        r = b.fresh_reg()
        b.lea(r, "H", 5, tags.TLST)
        b.st(r, "H", 0)
    mem = probe(ops)
    assert mem[HEAP] == tags.pack(HEAP + 5, tags.TLST)


def test_mktag_and_gettag():
    def ops(b):
        r, t = b.fresh_reg(), b.fresh_reg()
        b.ldi_int(r, 9)
        b.mktag(r, r, tags.TATM)
        b.st(r, "H", 0)
        b.emit("gettag", rd=t, ra=r)
        b.st(t, "H", 1)
    mem = probe(ops)
    assert tags.tag_of(mem[HEAP]) == tags.TATM
    assert tags.value_of(mem[HEAP]) == 9
    assert tags.value_of(mem[HEAP + 1]) == tags.TATM


def test_btag_taken_and_not_taken():
    def ops(b):
        r, out = b.fresh_reg(), b.fresh_reg()
        b.ldi_int(r, 1)
        taken = b.fresh_label("taken")
        done = b.fresh_label("done")
        b.btag(r, tags.TINT, taken)
        b.ldi_int(out, 0)
        b.jmp(done)
        b.label(taken)
        b.ldi_int(out, 1)
        b.label(done)
        b.st(out, "H", 0)
    mem = probe(ops)
    assert tags.value_of(mem[HEAP]) == 1


def test_value_compare_branches():
    def ops(b):
        x, y, out = b.fresh_reg(), b.fresh_reg(), b.fresh_reg()
        b.ldi_int(x, -5)
        b.ldi_int(y, 3)
        yes = b.fresh_label("yes")
        done = b.fresh_label("done")
        b.branch("bltv", x, y, yes)
        b.ldi_int(out, 0)
        b.jmp(done)
        b.label(yes)
        b.ldi_int(out, 1)
        b.label(done)
        b.st(out, "H", 0)
    mem = probe(ops)
    assert tags.value_of(mem[HEAP]) == 1


def test_beq_compares_whole_words_including_tag():
    def ops(b):
        x, y, out = b.fresh_reg(), b.fresh_reg(), b.fresh_reg()
        b.ldi(x, tags.pack(4, tags.TINT))
        b.ldi(y, tags.pack(4, tags.TATM))
        eq = b.fresh_label("eq")
        done = b.fresh_label("done")
        b.ldi_int(out, 0)
        b.branch("beq", x, y, eq)
        b.jmp(done)
        b.label(eq)
        b.ldi_int(out, 1)
        b.label(done)
        b.st(out, "H", 0)
    mem = probe(ops)
    assert tags.value_of(mem[HEAP]) == 0  # same value, different tag


def test_call_links_and_jmpr_returns():
    def ops(b):
        out = b.fresh_reg()
        sub = b.fresh_label("sub")
        after = b.fresh_label("after")
        b.jmp(after)
        b.label(sub)
        b.ldi_int(out, 42)
        b.jmpr("RL")
        b.label(after)
        b.call(sub, link="RL")
        b.st(out, "H", 0)
    mem = probe(ops)
    assert tags.value_of(mem[HEAP]) == 42


def test_halt_status_code():
    builder = Builder(SymbolTable())
    builder.label("$start")
    builder.halt(3)
    result = Emulator(builder.finish()).run()
    assert result.status == 3
    assert not result.succeeded


def test_step_limit_enforced():
    builder = Builder(SymbolTable())
    builder.label("$start")
    builder.label("loop")
    builder.jmp("loop")
    with pytest.raises(EmulatorError):
        Emulator(builder.finish(), max_steps=100).run()


def test_uninitialised_read_reports_pc():
    builder = Builder(SymbolTable())
    builder.label("$start")
    r = builder.fresh_reg()
    builder.ld(r, "H", 12345)
    builder.halt(0)
    with pytest.raises(EmulatorError) as info:
        Emulator(builder.finish()).run()
    assert "pc=" in str(info.value)


def test_counts_and_taken_statistics():
    builder = Builder(SymbolTable())
    builder.label("$start")
    i = builder.fresh_reg()
    limit = builder.fresh_reg()
    one = builder.fresh_reg()
    builder.ldi_int(i, 0)
    builder.ldi_int(limit, 5)
    builder.ldi_int(one, 1)
    builder.label("loop")
    builder.alu("add", i, i, rb=one)
    builder.branch("bltv", i, limit, "loop")
    builder.halt(0)
    program = builder.finish()
    result = Emulator(program).run()
    branch_pc = program.labels["loop"] + 1
    assert result.counts[branch_pc] == 5
    assert result.taken[branch_pc] == 4
    assert abs(result.branch_probability(branch_pc) - 0.8) < 1e-9


def test_functor_table_initialised():
    symbols = SymbolTable()
    index = symbols.functor("f", 3)
    builder = Builder(symbols)
    builder.label("$start")
    r = builder.fresh_reg()
    base = builder.fresh_reg()
    builder.ldi(base, tags.pack(layout.FTAB_BASE + index, tags.TRAW))
    builder.ld(r, base, 0)
    builder.st(r, "H", 0)
    builder.halt(0)
    mem = _step_all(builder.finish())
    assert tags.value_of(mem[HEAP]) == 3


def test_undefined_label_rejected_at_finish():
    builder = Builder(SymbolTable())
    builder.label("$start")
    builder.jmp("nowhere")
    with pytest.raises(ValueError):
        builder.finish()


def test_duplicate_label_rejected():
    builder = Builder(SymbolTable())
    builder.label("$start")
    with pytest.raises(ValueError):
        builder.label("$start")
