"""Machine and interpreter fault behaviour."""

import pytest

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program, EmulatorError
from repro.interp import Engine, PrologError


def test_division_by_zero_is_a_machine_fault():
    program = translate_module(compile_source(
        "main :- X is 1 // 0, write(X)."))
    with pytest.raises(EmulatorError) as info:
        run_program(program)
    assert "division by zero" in str(info.value)
    assert "pc=" in str(info.value)


def test_mod_by_zero_is_a_machine_fault():
    program = translate_module(compile_source(
        "main :- X is 1 mod 0, write(X)."))
    with pytest.raises(EmulatorError):
        run_program(program)


def test_interpreter_division_by_zero_raises():
    engine = Engine()
    engine.consult("main :- X is 1 // 0.")
    with pytest.raises(PrologError) as info:
        engine.run_query("main")
    assert "zero" in str(info.value)


def test_interpreter_comparison_by_zero_raises():
    engine = Engine()
    engine.consult("main :- 1 // 0 < 2.")
    with pytest.raises(PrologError):
        engine.run_query("main")


def test_non_integer_arithmetic_still_fails_quietly():
    engine = Engine()
    engine.consult("p(X) :- Y is X + 1, write(Y). main :- p(a).")
    assert not engine.run_query("main")
