"""Unit tests of the resilience layer itself: backoff determinism,
report semantics, pool teardown and cooperative signal handling.

The end-to-end behaviour (faults injected into real sweeps) lives in
``test_chaos.py``; this file pins the supervisor's building blocks.
"""

import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.evaluation import parallel
from repro.evaluation.parallel import EvaluationEngine
from repro.evaluation.supervisor import (
    EvaluationReport, SupervisorPolicy, _cooperative_signals, kill_pool)

pytestmark = pytest.mark.chaos


# --------------------------------------------------------------------------
# Backoff: exponential, capped, deterministically jittered.

def test_backoff_is_deterministic_across_policies():
    first = SupervisorPolicy(seed=1992)
    second = SupervisorPolicy(seed=1992)
    for attempt in (1, 2, 3, 7):
        assert first.backoff("conc30/cell/vliw3", attempt) \
            == second.backoff("conc30/cell/vliw3", attempt)


def test_backoff_depends_on_seed_label_and_attempt():
    policy = SupervisorPolicy(seed=1992)
    other_seed = SupervisorPolicy(seed=7)
    label = "conc30/cell/vliw3"
    assert policy.backoff(label, 1) != other_seed.backoff(label, 1)
    assert policy.backoff(label, 1) != policy.backoff("divide10/x", 1)
    assert policy.backoff(label, 1) != policy.backoff(label, 2)


def test_backoff_grows_exponentially_and_respects_the_cap():
    policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=0.8, seed=3)
    label = "a/b"
    for attempt in range(1, 12):
        delay = policy.backoff(label, attempt)
        base = min(0.8, 0.1 * (2 ** (attempt - 1)))
        # Jitter is bounded: [0.5, 1.5] x the capped exponential base.
        assert 0.5 * base <= delay <= 1.5 * base


def test_policy_clamps_degenerate_parameters():
    policy = SupervisorPolicy(max_attempts=0, max_pool_restarts=-4)
    assert policy.max_attempts == 1
    assert policy.max_pool_restarts == 0


# --------------------------------------------------------------------------
# The report.

def test_report_counts_and_summary():
    report = EvaluationReport()
    report.record("a", "bench/profile", "ok")
    report.record("b", "bench/regions/bb", "cached", attempts=0)
    report.record("c", "bench/cell/seq", "retried", attempts=3,
                  seconds=1.25)
    assert report.counts()["ok"] == 1
    assert report.counts()["retried"] == 1
    assert report.by_status("cached") == ["bench/regions/bb"]
    text = report.summary()
    assert "3 task(s)" in text and "1 retried" in text
    assert "pool restart" not in text and "degraded" not in text


def test_report_rejects_unknown_status():
    with pytest.raises(ValueError):
        EvaluationReport().record("a", "x", "exploded")


def test_later_cache_hit_does_not_mask_a_computed_outcome():
    """Engines outlive one sweep; a node retried in sweep 1 and served
    from cache in sweep 2 keeps its informative 'retried' record."""
    report = EvaluationReport()
    report.record("a", "bench/profile", "retried", attempts=2)
    report.record("a", "bench/profile", "cached", attempts=0)
    assert report.records["a"]["status"] == "retried"
    # ...but a genuinely new outcome does replace the record.
    report.record("a", "bench/profile", "failed", attempts=3)
    assert report.records["a"]["status"] == "failed"


def test_report_json_shape():
    report = EvaluationReport()
    report.record("b", "two", "failed", attempts=3,
                  detail="RuntimeError: boom")
    report.record("a", "one", "ok")
    report.pool_restarts = 2
    report.degraded = True
    document = report.to_json()
    # Tasks sorted by id; run-level fields carried through.
    assert [task["label"] for task in document["tasks"]] == ["one", "two"]
    assert document["summary"]["failed"] == 1
    assert document["pool_restarts"] == 2
    assert document["degraded"] is True
    assert document["interrupted"] is None
    assert document["tasks"][1]["detail"] == "RuntimeError: boom"


def test_summary_mentions_restarts_degradation_and_interruption():
    report = EvaluationReport()
    report.pool_restarts = 1
    report.degraded = True
    report.interrupted = "SIGINT"
    text = report.summary()
    assert "1 pool restart(s)" in text
    assert "degraded to in-process execution" in text
    assert "interrupted by SIGINT" in text


# --------------------------------------------------------------------------
# Pool teardown and signal handling.

def _sleep_forever(unused):     # module-level: picklable
    time.sleep(600)


def test_kill_pool_reaps_a_hung_worker_quickly():
    pool = ProcessPoolExecutor(max_workers=1)
    future = pool.submit(_sleep_forever, None)
    deadline = time.monotonic() + 10.0
    while not pool._processes and time.monotonic() < deadline:
        time.sleep(0.02)
    processes = list(pool._processes.values())
    started = time.monotonic()
    kill_pool(pool)
    for process in processes:
        process.join(timeout=10.0)
        assert not process.is_alive()
    # Teardown is immediate — no waiting out the 600s sleep.
    assert time.monotonic() - started < 10.0
    assert future.done() or future.cancelled()


def test_cooperative_signals_catch_and_restore():
    previous = signal.getsignal(signal.SIGINT)
    with _cooperative_signals() as signals:
        assert signals.received is None
        os.kill(os.getpid(), signal.SIGINT)
        deadline = time.monotonic() + 5.0
        while signals.received is None \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        assert signals.received == "SIGINT"
    assert signal.getsignal(signal.SIGINT) is previous


# --------------------------------------------------------------------------
# The supervised map sweep (repro verify's execution path).

def _flaky_once(marker_path):   # module-level: picklable
    try:
        descriptor = os.open(marker_path, os.O_CREAT | os.O_EXCL)
    except FileExistsError:
        return "ok:" + os.path.basename(marker_path)
    os.close(descriptor)
    raise RuntimeError("first call fails by design")


def test_map_retries_transient_failures(tmp_path):
    policy = SupervisorPolicy(max_attempts=2, backoff_base=0.01,
                              backoff_cap=0.05, seed=1992, poll=0.02)
    items = [str(tmp_path / name) for name in ("a", "b")]
    with EvaluationEngine(jobs=2, policy=policy) as engine:
        results = engine.map(_flaky_once, items)
        report = engine.report
    assert results == ["ok:a", "ok:b"]
    counts = report.counts()
    assert counts["retried"] == 2 and counts["failed"] == 0


def test_map_surfaces_exhausted_items(tmp_path):
    policy = SupervisorPolicy(max_attempts=1, backoff_base=0.01,
                              backoff_cap=0.05, seed=1992, poll=0.02)
    items = [str(tmp_path / name) for name in ("a", "b")]
    with EvaluationEngine(jobs=2, policy=policy) as engine:
        with pytest.raises(parallel.EvaluationError) as caught:
            engine.map(_flaky_once, items)
    assert "first call fails by design" in str(caught.value)
