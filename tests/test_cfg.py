"""Control-flow graph construction over ICI programs."""

from repro.terms import SymbolTable, tags
from repro.intcode.program import Builder
from repro.analysis.cfg import Cfg
from repro.bam import compile_source
from repro.intcode import translate_module


def simple_program():
    b = Builder(SymbolTable())
    b.label("$start")
    r = b.fresh_reg()
    b.ldi_int(r, 1)                 # 0
    b.btag(r, tags.TINT, "yes")     # 1  -> block break
    b.ldi_int(r, 0)                 # 2
    b.jmp("done")                   # 3
    b.label("yes")
    b.ldi_int(r, 2)                 # 4
    b.label("done")
    b.halt(0)                       # 5
    return b.finish()


def test_blocks_split_at_branches_and_targets():
    cfg = Cfg(simple_program())
    starts = sorted(block.start for block in cfg.blocks)
    assert starts == [0, 2, 4, 5]


def test_branch_block_has_two_successors():
    cfg = Cfg(simple_program())
    block = cfg.block_at[0]
    assert block.succs == [4, 2]  # taken target first, then fall-through


def test_jmp_block_single_successor():
    cfg = Cfg(simple_program())
    assert cfg.block_at[2].succs == [5]


def test_halt_block_no_successors():
    cfg = Cfg(simple_program())
    assert cfg.block_at[5].succs == []


def test_predecessors_inverse_of_successors():
    cfg = Cfg(simple_program())
    assert sorted(cfg.predecessors(cfg.block_at[5])) == [2, 4]


def test_fallthrough_block_successor():
    b = Builder(SymbolTable())
    b.label("$start")
    r = b.fresh_reg()
    b.ldi_int(r, 1)
    b.label("mid")                  # leader by being a jmp target
    b.ldi_int(r, 2)
    b.jmp("mid2")
    b.label("mid2")
    b.halt(0)
    cfg = Cfg(b.finish())
    # No split at "mid" (labels alone do not split): the first block runs
    # through both ldi ops up to the jmp, whose target pc is 3.
    assert cfg.block_at[0].end == 3
    assert cfg.block_at[0].succs == [3]


def test_call_marks_indirect_entries():
    b = Builder(SymbolTable())
    b.label("$start")
    b.call("sub", link="CP")        # 0
    b.halt(0)                       # 1 (return point)
    b.label("sub")
    b.jmpr("CP")                    # 2
    cfg = Cfg(b.finish())
    assert 1 in cfg.indirect_entries        # return point
    assert 2 in cfg.indirect_entries        # call target
    assert cfg.block_at[0].succs == []      # calls end traces


def test_ldi_code_target_is_indirect_entry():
    b = Builder(SymbolTable())
    b.label("$start")
    r = b.fresh_reg()
    b.ldi_code(r, "handler")
    b.halt(0)
    b.label("handler")
    b.halt(1)
    cfg = Cfg(b.finish())
    assert b.labels["handler"] in cfg.indirect_entries


def test_real_program_blocks_partition_all_instructions():
    program = translate_module(compile_source("""
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        main :- app([1], [2], X), write(X), nl.
    """))
    cfg = Cfg(program)
    covered = sorted(pc for block in cfg.blocks
                     for pc in range(block.start, block.end))
    assert covered == list(range(len(program)))


def test_dynamic_block_stats_weighting():
    program = simple_program()
    cfg = Cfg(program)
    counts = [0] * len(program)
    counts[0] = 10   # block [0,2): size 2
    counts[4] = 10   # block [4,5): size 1
    counts[5] = 10
    mean, entries = cfg.dynamic_block_stats(counts)
    assert entries == 30
    assert abs(mean - (2 + 1 + 1) / 3) < 1e-9
