"""Dataflow-limit model: executes correctly and bounds sensibly."""

import pytest

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.evaluation.dynamic import dataflow_limit
from repro.evaluation.pipeline import superblock_regions, machine_cycles
from repro.compaction import sequential, ideal
from repro.intcode.ici import OP_CLASS, MEM

SOURCE = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app([1,2,3,4,5,6], [7,8], X), write(X), nl.
"""


@pytest.fixture(scope="module")
def program():
    return translate_module(compile_source(SOURCE))


def test_dataflow_executes_the_same_computation(program):
    result = run_program(program)
    flow = dataflow_limit(program)
    assert flow.status == result.status == 0
    assert flow.steps == result.steps


def test_dataflow_cycles_bounded_below_by_memory_port(program):
    result = run_program(program)
    mem_ops = sum(count for pc, count in enumerate(result.counts)
                  if count and OP_CLASS[program.instructions[pc].op] == MEM)
    flow = dataflow_limit(program)
    assert flow.cycles >= mem_ops


def test_dataflow_no_slower_than_sequential(program):
    result = run_program(program)
    from repro.evaluation.pipeline import basic_block_regions
    seq_cycles = machine_cycles(basic_block_regions(program, result),
                                sequential())
    flow = dataflow_limit(program)
    assert flow.cycles <= seq_cycles


def test_dataflow_at_least_as_fast_as_static_trace(program):
    result = run_program(program)
    region_set = superblock_regions(program, result)
    static_cycles = machine_cycles(region_set, ideal())
    flow = dataflow_limit(program)
    # Perfect disambiguation + no control constraints: never slower than
    # the static schedule (both behind one memory port).
    assert flow.cycles <= static_cycles * 1.05


def test_more_ports_never_slower(program):
    one = dataflow_limit(program, mem_ports=1)
    two = dataflow_limit(program, mem_ports=2)
    assert two.cycles <= one.cycles


def test_failure_status_propagates():
    failing = translate_module(compile_source(
        "p(a). main :- p(b), write(x), nl."))
    flow = dataflow_limit(failing)
    assert flow.status == 1


def test_step_budget_enforced():
    looping = translate_module(compile_source("""
        loop :- loop.
        main :- loop.
    """))
    from repro.emulator import EmulatorError
    with pytest.raises(EmulatorError):
        dataflow_limit(looping, max_steps=10_000)
