"""Corpus sweep tests: spec building, the per-program worker, the
document schema and the ``repro corpus`` CLI."""

import io
import json

import pytest

from repro.evaluation.parallel import EvaluationEngine
from repro.experiments.corpus_sweep import (
    CORPUS_BENCH_SCHEMA, CORPUS_CONFIG_KEYS, SATURATION_WIDTHS,
    build_corpus_specs, run_corpus_sweep, sweep_target,
    validate_corpus_bench, write_corpus_bench)


def test_build_corpus_specs():
    specs = build_corpus_specs(4, 1992)
    assert len(specs) == 7  # 3 workloads + 4 generated
    kinds = [spec["kind"] for spec in specs]
    assert kinds == ["dcg"] * 3 + ["generated"] * 4
    names = [spec["name"] for spec in specs]
    assert names[:3] == ["dcg_calc", "dcg_grammar", "dcg_json"]
    assert names[3:] == ["gen01992", "gen01993", "gen01994", "gen01995"]
    without = build_corpus_specs(4, 1992, include_workloads=False)
    assert len(without) == 4


def test_sweep_target_record_shape():
    spec = build_corpus_specs(1, 1992,
                              include_workloads=False)[0]
    record = sweep_target(spec)
    assert record["name"] == "gen01992"
    assert record["kind"] == "generated"
    assert record["seed"] == 1992
    assert record["oracle"]["match"] is True
    assert record["verify_findings"] == 0
    assert record["ops"] > 0 and record["steps"] > 0
    assert sum(record["mix"].values()) == pytest.approx(1.0)
    assert 0.0 <= record["branch"]["avg_p_fp"] <= 0.5
    ilp = record["ilp"]
    # limit >= achieved >= 1: the dataflow bound dominates trace
    # scheduling, which dominates the sequential machine
    assert ilp["dataflow_limit_speedup"] >= ilp["achieved_speedup"] >= 1.0
    assert ilp["gap"] >= 1.0


def test_sweep_target_saturation_curve():
    spec = build_corpus_specs(1, 1992, include_workloads=False,
                              saturation=True)[0]
    assert spec["saturation"] is True
    record = sweep_target(spec)
    curve = record["saturation"]
    assert sorted(curve) == sorted("vliw%d" % w
                                   for w in SATURATION_WIDTHS)
    # more units never slow the trace schedule down: the curve is
    # monotone in width, and it saturates rather than scaling linearly
    speedups = [curve["vliw%d" % w] for w in SATURATION_WIDTHS]
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] < len(SATURATION_WIDTHS)
    # without the flag the record has no curve
    plain = sweep_target(build_corpus_specs(
        1, 1992, include_workloads=False)[0])
    assert "saturation" not in plain


@pytest.fixture(scope="module")
def small_document():
    engine = EvaluationEngine(jobs=1)
    try:
        return run_corpus_sweep(3, 1992, engine=engine)
    finally:
        engine.close()


def test_small_sweep_is_clean(small_document):
    summary = small_document["summary"]
    assert summary["programs"] == 6
    assert summary["generated"] == 3
    assert summary["dcg_workloads"] == 3
    assert summary["oracle_mismatches"] == []
    assert summary["verify_finding_programs"] == []


def test_document_validates(small_document):
    assert validate_corpus_bench(small_document) == []


def test_document_claim_report(small_document):
    claim = small_document["summary"]["claim"]
    assert claim["programs_with_branches"] == 6
    assert (claim["predictable"] + len(claim["worst"])
            == claim["programs_with_branches"])
    assert sum(claim["p_fp_histogram"].values()) == 6
    # the DCG application workloads break the paper's threshold; the
    # generated list-crunchers do not — the corpus-scale finding
    worst_names = {entry["name"] for entry in claim["worst"]}
    assert worst_names == {"dcg_calc", "dcg_grammar", "dcg_json"}


def test_document_parameters(small_document):
    parameters = small_document["parameters"]
    assert parameters["count"] == 3
    assert parameters["base_seed"] == 1992
    assert parameters["machine_configs"] == list(CORPUS_CONFIG_KEYS)
    assert small_document["schema"] == CORPUS_BENCH_SCHEMA


def test_validator_catches_tampering(small_document):
    broken = json.loads(json.dumps(small_document))
    broken["summary"]["programs"] = 99
    assert validate_corpus_bench(broken)
    broken = json.loads(json.dumps(small_document))
    broken["programs"][0]["mix"]["mem"] += 0.5
    assert validate_corpus_bench(broken)
    broken = json.loads(json.dumps(small_document))
    del broken["summary"]["claim"]
    assert validate_corpus_bench(broken)
    assert validate_corpus_bench({"schema": 0})
    assert validate_corpus_bench([])


def test_write_corpus_bench_round_trips(small_document, tmp_path):
    path = write_corpus_bench(small_document,
                              str(tmp_path / "sub" / "BENCH.json"))
    with open(path) as handle:
        loaded = json.load(handle)
    assert validate_corpus_bench(loaded) == []
    assert loaded["summary"] == json.loads(
        json.dumps(small_document["summary"]))


def test_documents_are_deterministic(small_document):
    """Same seeds, same cache → identical records (timing aside)."""
    engine = EvaluationEngine(jobs=1)
    try:
        again = run_corpus_sweep(3, 1992, engine=engine)
    finally:
        engine.close()
    first = json.loads(json.dumps(small_document["programs"]))
    second = json.loads(json.dumps(again["programs"]))
    assert first == second


def test_corpus_cli_quick(tmp_path):
    from repro.cli import main
    output = tmp_path / "BENCH_corpus.json"
    out, err = io.StringIO(), io.StringIO()
    status = main(["corpus", "--count", "2", "--jobs", "1",
                   "--output", str(output)], out=out, err=err)
    assert status == 0, err.getvalue()
    text = out.getvalue()
    assert "oracle: 0 mismatch(es)" in text
    assert "branch claim" in text
    assert "static ILP gap" in text
    with open(output) as handle:
        document = json.load(handle)
    assert validate_corpus_bench(document) == []
    assert document["summary"]["programs"] == 5


def test_corpus_sweep_saturation_summary():
    engine = EvaluationEngine(jobs=1)
    try:
        document = run_corpus_sweep(2, 1992, engine=engine,
                                    include_workloads=False,
                                    saturation=True)
    finally:
        engine.close()
    assert validate_corpus_bench(document) == []
    curve = document["summary"]["saturation"]
    assert sorted(curve) == sorted("vliw%d" % w
                                   for w in SATURATION_WIDTHS)
    means = [curve["vliw%d" % w]["mean"] for w in SATURATION_WIDTHS]
    assert all(b >= a for a, b in zip(means, means[1:]))
    # tampering with the curve is caught
    broken = json.loads(json.dumps(document))
    del broken["summary"]["saturation"]["vliw3"]
    assert validate_corpus_bench(broken)
    broken = json.loads(json.dumps(document))
    broken["programs"][0]["saturation"]["vliw2"] = "fast"
    assert validate_corpus_bench(broken)


def test_corpus_cli_saturation_output(tmp_path):
    from repro.cli import main
    output = tmp_path / "BENCH_corpus.json"
    out, err = io.StringIO(), io.StringIO()
    status = main(["corpus", "--count", "2", "--jobs", "1",
                   "--saturation", "--output", str(output)],
                  out=out, err=err)
    assert status == 0, err.getvalue()
    assert "saturation (mean speedup): vliw1" in out.getvalue()
    with open(output) as handle:
        document = json.load(handle)
    assert validate_corpus_bench(document) == []
    assert "saturation" in document["summary"]


def test_corpus_cli_rejects_count_with_quick():
    from repro.cli import main
    out, err = io.StringIO(), io.StringIO()
    status = main(["corpus", "--count", "3", "--quick"],
                  out=out, err=err)
    assert status == 2
    assert "not both" in err.getvalue()


def test_corpus_document_empty_quantiles():
    """The distribution helpers stay defined on degenerate sweeps."""
    from repro.experiments.corpus_sweep import _quantiles
    empty = _quantiles([])
    assert empty["median"] == 0.0 and empty["mean"] == 0.0
    single = _quantiles([2.0])
    assert single["min"] == single["max"] == single["median"] == 2.0
