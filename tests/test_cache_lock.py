"""Crash-safe IO and cache-lock contention.

Two whole evaluation runs sharing one cache directory must never
corrupt each other — that is the contract behind ``repro evaluate``
being safe to run from two shells (or CI shards) at once.  These tests
drive :mod:`repro.atomicio` directly and then race two full engines.
"""

import json
import os
import threading

import pytest

from repro.atomicio import (
    FileLock, LockTimeout, atomic_write_json, atomic_write_text)
from repro.compaction import sequential, vliw
from repro.evaluation import parallel
from repro.evaluation.parallel import CacheStore, EvaluationEngine
from repro.evaluation.supervisor import SupervisorPolicy

pytestmark = pytest.mark.chaos


# --------------------------------------------------------------------------
# atomic_write_text / atomic_write_json.

def test_atomic_write_publishes_exact_bytes(tmp_path):
    path = str(tmp_path / "out.txt")
    atomic_write_text(path, "hello\n")
    assert open(path).read() == "hello\n"
    # No temp droppings after a successful publish.
    assert os.listdir(str(tmp_path)) == ["out.txt"]


def test_atomic_write_replaces_without_a_torn_window(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"value": 1})
    atomic_write_json(path, {"value": 2})
    assert json.load(open(path)) == {"value": 2}
    assert os.listdir(str(tmp_path)) == ["out.json"]


def test_atomic_write_failure_leaves_no_temp_file(tmp_path):
    missing = str(tmp_path / "no-such-dir" / "out.txt")
    with pytest.raises(OSError):
        atomic_write_text(missing, "x")
    assert os.listdir(str(tmp_path)) == []


def test_atomic_write_json_is_newline_terminated(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"a": 1})
    assert open(path).read().endswith("\n")


# --------------------------------------------------------------------------
# FileLock.

def test_filelock_excludes_a_second_acquirer(tmp_path):
    path = str(tmp_path / ".lock")
    with FileLock(path) as held:
        assert held.held
        with pytest.raises(LockTimeout):
            FileLock(path, timeout=0.2, poll=0.02).acquire()
    # Released: a fresh acquirer succeeds immediately.
    second = FileLock(path, timeout=0.2, poll=0.02).acquire()
    second.release()
    assert not second.held


def test_filelock_file_is_never_deleted(tmp_path):
    path = str(tmp_path / ".lock")
    with FileLock(path):
        pass
    assert os.path.exists(path)


def test_filelock_serialises_threads(tmp_path):
    path = str(tmp_path / ".lock")
    active = [0]
    overlaps = []

    def worker():
        for _ in range(5):
            with FileLock(path):
                active[0] += 1
                overlaps.append(active[0])
                active[0] -= 1

    threads = [threading.Thread(target=worker) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Mutual exclusion: never two holders inside the critical section.
    assert overlaps and max(overlaps) == 1


# --------------------------------------------------------------------------
# Two whole evaluation runs sharing one cache directory (satellite:
# the lock-contention acceptance test).

def _configs():
    return {"seq": (sequential(), "bb"), "vliw3": (vliw(3), "trace")}


def _policy():
    return SupervisorPolicy(max_attempts=2, deadline=60.0,
                            backoff_base=0.01, backoff_cap=0.05,
                            seed=1992, poll=0.02)


def _sweep(cache_root):
    store = CacheStore(root=str(cache_root))
    with EvaluationEngine(jobs=1, store=store,
                          policy=_policy()) as engine:
        return engine.evaluate_many(
            [{"name": "conc30", "configs": _configs()}])[0].data


def _artefacts(root):
    return {name: open(os.path.join(str(root), name), "rb").read()
            for name in sorted(os.listdir(str(root)))
            if name.startswith("cas-") and name.endswith(".json")}


def test_concurrent_engines_share_a_cache_without_damage(
        monkeypatch, tmp_path):
    """Two evaluate_many sweeps racing on one cold cache directory both
    finish, agree, and leave artefacts byte-identical to a solo run."""
    monkeypatch.setattr(parallel, "_worker_programs", {})
    monkeypatch.setattr(parallel, "_worker_regions", {})
    baseline_root = tmp_path / "baseline"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(baseline_root))
    baseline = _sweep(baseline_root)

    shared = tmp_path / "shared"
    shared.mkdir()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(shared))
    monkeypatch.setattr(parallel, "_worker_programs", {})
    monkeypatch.setattr(parallel, "_worker_regions", {})
    outcomes = [None, None]

    def race(slot):
        try:
            outcomes[slot] = ("ok", _sweep(shared))
        except BaseException as error:   # surfaced in the main thread
            outcomes[slot] = ("error", repr(error))

    threads = [threading.Thread(target=race, args=(slot,))
               for slot in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    assert outcomes[0] == ("ok", baseline), outcomes[0]
    assert outcomes[1] == ("ok", baseline), outcomes[1]
    assert _artefacts(shared) == _artefacts(baseline_root)
    # Every published artefact still round-trips its checksum.
    store = CacheStore(root=str(shared))
    for name, content in _artefacts(shared).items():
        entry = json.loads(content)
        assert store.get(entry["key"]) == entry["payload"]
    # No temp droppings, and the advisory lock is free.
    assert not [name for name in os.listdir(str(shared))
                if name.endswith(".tmp")]
    with FileLock(str(shared / ".lock"), timeout=1.0):
        pass
