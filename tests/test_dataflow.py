"""Lattice dataflow framework: the worklist engine, every concrete
pass, the region-level disambiguation/dead-write facts, and the static
ILP bound — on hand-built CFGs (including adversarial shapes: dead
code, irreducible loops, empty regions, fallthrough-only blocks) and
property-based on random compiled programs."""

from hypothesis import given, settings, strategies as st

from repro.analysis.cfg import Cfg
from repro.analysis.dataflow import (
    AvailableExpressions, CopyConstants, LiveRegisters, NAC,
    ReachingDefinitions, RegionMemoryFacts, dataflow_limit_cycles,
    dead_writes, reachable_blocks, region_dead_writes,
    region_dependence_height, solve, unreachable_blocks)
from repro.bam import compile_source
from repro.compaction.machine_model import ideal, vliw
from repro.emulator import Emulator
from repro.intcode import translate_module
from repro.intcode.ici import Ici
from repro.intcode.program import Program


def prog(instructions, labels=None, entry="$start"):
    labels = dict(labels or {})
    labels.setdefault(entry, 0)
    return Program(list(instructions), labels, None, entry=entry)


# -- engine: reachability and convergence ------------------------------------

def test_unreachable_blocks_after_halt():
    cfg = Cfg(prog([
        Ici("halt"),
        Ici("ldi", rd="r1", imm=1),
        Ici("halt"),
    ]))
    assert unreachable_blocks(cfg) == [(1, 3)]
    assert 0 in reachable_blocks(cfg)


def test_indirect_entries_are_reachable():
    # The block at "fn" has no static in-edge but its address is
    # materialised, so the analyses must treat it as live code.
    cfg = Cfg(prog([
        Ici("ldi", rd="r7", label="fn"),
        Ici("jmpr", ra="r7"),
        Ici("ldi", rd="r1", imm=1),
        Ici("halt"),
    ], labels={"fn": 2}))
    assert 2 in reachable_blocks(cfg)
    assert unreachable_blocks(cfg) == []


def test_engine_converges_on_irreducible_loop():
    # Two branch entries into a two-block cycle: no reducible-loop
    # assumption holds, the engine must still reach a fixpoint.
    cfg = Cfg(prog([
        Ici("btag", ra="a0", tag=0, label="B"),
        Ici("ldi", rd="r1", imm=1),
        Ici("btag", ra="a1", tag=0, label="B"),  # A: falls into B too
        Ici("ldi", rd="r1", imm=2),
        Ici("btag", ra="a2", tag=0, label="A"),  # B: back edge to A
        Ici("halt"),
    ], labels={"A": 2, "B": 3}))
    solution = solve(cfg, CopyConstants(cfg, abi_registers=("a0", "a1",
                                                           "a2")))
    assert max(solution.visits.values()) < 50
    # r1 is 1 or 2 depending on the path: meet must say not-a-constant.
    assert solution.in_of[3].get("r1") == NAC


def test_self_loop_converges():
    cfg = Cfg(prog([
        Ici("add", rd="r1", ra="a0", rb="a0"),
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("halt"),
    ], labels={"L": 0}))
    solution = solve(cfg, ReachingDefinitions(cfg))
    assert max(solution.visits.values()) < 50


# -- reaching definitions ----------------------------------------------------

def test_reaching_definitions_merge_both_paths():
    cfg = Cfg(prog([
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("ldi", rd="r1", imm=1),
        Ici("jmp", label="M"),
        Ici("ldi", rd="r1", imm=2),   # L
        Ici("add", rd="r2", ra="r1", rb="a0"),  # M
        Ici("halt"),
    ], labels={"L": 3, "M": 4}))
    rd = ReachingDefinitions(cfg)
    solution = solve(cfg, rd)
    sites = rd.sites(solution.in_of[4])
    assert (1, "r1") in sites and (3, "r1") in sites


def test_reaching_definitions_kill():
    cfg = Cfg(prog([
        Ici("ldi", rd="r1", imm=1),
        Ici("ldi", rd="r1", imm=2),
        Ici("halt"),
    ]))
    rd = ReachingDefinitions(cfg)
    solution = solve(cfg, rd)
    assert rd.sites(solution.out_of[0]) == {(1, "r1")}


def test_reaching_definitions_abi_boundary():
    cfg = Cfg(prog([Ici("halt")]))
    rd = ReachingDefinitions(cfg, abi_registers=("a0",))
    solution = solve(cfg, rd)
    assert (-1, "a0") in rd.sites(solution.in_of[0])


# -- copy/constant propagation -----------------------------------------------

def test_constants_flow_through_copy_chains():
    cfg = Cfg(prog([
        Ici("ldi", rd="r1", imm=7),
        Ici("mov", rd="r2", ra="r1"),
        Ici("mov", rd="r3", ra="r2"),
        Ici("halt"),
    ]))
    solution = solve(cfg, CopyConstants(cfg))
    out = solution.out_of[0]
    assert CopyConstants.resolve(out, "r3") == ("const", 7)


def test_copy_fact_dies_with_its_source():
    cfg = Cfg(prog([
        Ici("mov", rd="r2", ra="r1"),
        Ici("add", rd="r1", ra="a0", rb="a0"),   # r1 redefined
        Ici("halt"),
    ]))
    solution = solve(cfg, CopyConstants(cfg))
    assert solution.out_of[0].get("r2") == NAC


def test_loop_carried_constant_widens_to_nac():
    # r1 is 0 on entry, incremented in the loop: no single constant.
    cfg = Cfg(prog([
        Ici("ldi", rd="r1", imm=0),
        Ici("add", rd="r1", ra="r1", rb="r1"),   # L
        Ici("ldi", rd="r1", imm=1),
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("halt"),
    ], labels={"L": 1}))
    solution = solve(cfg, CopyConstants(cfg))
    assert solution.in_of[1].get("r1") == NAC


# -- available expressions ---------------------------------------------------

def test_expression_available_after_both_paths():
    cfg = Cfg(prog([
        Ici("add", rd="r1", ra="a0", rb="a1"),
        Ici("btag", ra="a0", tag=0, label="M"),
        Ici("ldi", rd="r9", imm=0),
        Ici("sub", rd="r2", ra="a0", rb="a1"),   # M
        Ici("halt"),
    ], labels={"M": 3}))
    ae = AvailableExpressions(cfg)
    solution = solve(cfg, ae)
    assert ("add", "a0", "a1", None, None, None) in solution.in_of[3]


def test_expression_killed_by_operand_redefinition():
    cfg = Cfg(prog([
        Ici("add", rd="r1", ra="a0", rb="a1"),
        Ici("ldi", rd="a0", imm=0),
        Ici("halt"),
    ]))
    solution = solve(cfg, AvailableExpressions(cfg))
    assert ("add", "a0", "a1", None, None, None) not in solution.out_of[0]


def test_ldi_label_and_immediate_are_distinct_expressions():
    cfg = Cfg(prog([
        Ici("ldi", rd="r1", imm=0),
        Ici("ldi", rd="r2", label="L"),
        Ici("halt"),                              # L
    ], labels={"L": 2}))
    ae = AvailableExpressions(cfg)
    exprs = {e for e in ae.universe if e[0] == "ldi"}
    assert len(exprs) == 2


# -- liveness and dead code --------------------------------------------------

def test_live_registers_across_branch():
    cfg = Cfg(prog([
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("add", rd="r2", ra="r1", rb="a0"),
        Ici("halt"),                              # L
    ], labels={"L": 2}))
    solution = solve(cfg, LiveRegisters(cfg))
    assert "r1" in solution.in_of[0]


def test_call_block_keeps_abi_live():
    cfg = Cfg(prog([
        Ici("ldi", rd="a0", imm=1),
        Ici("call", rd="RL", label="fn"),
        Ici("halt"),
        Ici("jmpr", ra="RL"),                     # fn
    ], labels={"fn": 3}))
    solution = solve(cfg, LiveRegisters(cfg, abi_registers=("a0",)))
    assert "a0" in solution.out_of[0] or "a0" in solution.in_of[0]
    assert dead_writes(cfg, abi_registers=("a0",)) == []


def test_dead_write_detected_and_stores_exempt():
    cfg = Cfg(prog([
        Ici("ldi", rd="r1", imm=1),               # dead: never read
        Ici("st", ra="a0", rb="H", imm=0),        # a store is an effect
        Ici("halt"),
    ]))
    assert dead_writes(cfg) == [0]


def test_dead_writes_skip_unreachable_blocks():
    cfg = Cfg(prog([
        Ici("halt"),
        Ici("ldi", rd="r1", imm=1),               # unreachable, not dead
        Ici("halt"),
    ]))
    assert dead_writes(cfg) == []
    assert unreachable_blocks(cfg) == [(1, 3)]


def test_fallthrough_only_blocks():
    # An ldi-materialised label splits straight-line code into blocks
    # joined only by fallthrough; liveness must flow across the seam.
    cfg = Cfg(prog([
        Ici("ldi", rd="r7", label="M"),
        Ici("ldi", rd="r1", imm=3),
        Ici("add", rd="r2", ra="r1", rb="r7"),    # M
        Ici("st", ra="r2", rb="H", imm=0),
        Ici("halt"),
    ], labels={"M": 2}))
    assert len(cfg.blocks) > 1
    assert dead_writes(cfg) == []


# -- region memory facts -----------------------------------------------------

def test_bank_distinct_references_independent():
    facts = RegionMemoryFacts([
        Ici("ld", rd="r1", ra="H", imm=0),
        Ici("st", ra="r1", rb="E", imm=0),
    ])
    assert facts.classify(0, 1) == "independent"


def test_same_base_offsets_disambiguated():
    facts = RegionMemoryFacts([
        Ici("st", ra="a0", rb="r9", imm=0),
        Ici("st", ra="a1", rb="r9", imm=1),
        Ici("ld", rd="r2", ra="r9", imm=0),
    ])
    assert facts.classify(0, 1) == "independent"
    assert facts.classify(0, 2) == "must"


def test_redefined_base_is_may_alias():
    facts = RegionMemoryFacts([
        Ici("st", ra="a0", rb="r9", imm=0),
        Ici("add", rd="r9", ra="r9", rb="a0"),
        Ici("ld", rd="r2", ra="r9", imm=0),
    ])
    assert facts.classify(0, 2) == "may"


def test_copy_of_base_shares_its_value():
    facts = RegionMemoryFacts([
        Ici("st", ra="a0", rb="r9", imm=0),
        Ici("mov", rd="r8", ra="r9"),
        Ici("ld", rd="r2", ra="r8", imm=1),
    ])
    assert facts.classify(0, 2) == "independent"


def test_pair_census_skips_load_load():
    facts = RegionMemoryFacts([
        Ici("ld", rd="r1", ra="r9", imm=0),
        Ici("ld", rd="r2", ra="r9", imm=0),
        Ici("st", ra="r1", rb="r9", imm=2),
    ])
    census = facts.pair_census()
    assert sum(census.values()) == 2        # (0,2) and (1,2) only
    assert census["independent"] == 2


# -- region dead writes ------------------------------------------------------

def _mask_for(names):
    bits = {name: 1 << i for i, name in enumerate(sorted(names))}
    return lambda name: bits.get(name, 0), bits


def test_region_dead_write_before_halt():
    reg_mask, bits = _mask_for(["r1", "r2", "a0"])
    ops = [Ici("ldi", rd="r1", imm=1),
           Ici("add", rd="r2", ra="a0", rb="a0"),
           Ici("halt")]
    dead = region_dead_writes(ops, live_out_mask=0, reg_mask=reg_mask)
    assert dead == frozenset({0, 1})


def test_region_dead_writes_need_masks():
    ops = [Ici("ldi", rd="r1", imm=1), Ici("halt")]
    assert region_dead_writes(ops, live_out_mask=None,
                              reg_mask=None) == frozenset()


def test_live_out_keeps_write_alive():
    reg_mask, bits = _mask_for(["r1"])
    ops = [Ici("ldi", rd="r1", imm=1)]
    assert region_dead_writes(ops, live_out_mask=bits["r1"],
                              reg_mask=reg_mask) == frozenset()


def test_unknown_continuation_makes_everything_live():
    reg_mask, bits = _mask_for(["r1"])
    ops = [Ici("ldi", rd="r1", imm=1),
           Ici("jmp", label="out")]
    assert region_dead_writes(ops, live_out_mask=0,
                              reg_mask=reg_mask) == frozenset()


def test_branch_without_off_live_mask_is_conservative():
    reg_mask, bits = _mask_for(["r1", "a0"])
    ops = [Ici("ldi", rd="r1", imm=1),
           Ici("btag", ra="a0", tag=0, label="out"),
           Ici("halt")]
    # No off-live information for the branch: r1 must stay.
    assert region_dead_writes(ops, live_out_mask=0,
                              reg_mask=reg_mask) == frozenset()
    # With an off-live mask that excludes r1, the write is dead.
    dead = region_dead_writes(ops, live_out_mask=0,
                              off_live={1: 0}, reg_mask=reg_mask)
    assert dead == frozenset({0})


# -- static ILP bound --------------------------------------------------------

def test_empty_region_has_zero_height():
    schedule = region_dependence_height([], ideal("t"))
    assert list(schedule.cycles) == []


def test_asap_respects_raw_latency():
    config = vliw(4)
    ops = [Ici("ld", rd="r1", ra="H", imm=0),
           Ici("add", rd="r2", ra="r1", rb="r1"),
           Ici("add", rd="r3", ra="a0", rb="a0")]
    schedule = region_dependence_height(ops, config)
    assert schedule.cycles[1] == schedule.cycles[0] \
        + config.duration("ld")
    assert schedule.cycles[2] == 0   # independent: no resource limits


def test_disambiguated_stores_issue_together():
    config = vliw(4)
    ops = [Ici("st", ra="a0", rb="r9", imm=0),
           Ici("st", ra="a1", rb="r9", imm=1)]
    schedule = region_dependence_height(ops, config)
    assert schedule.cycles[0] == schedule.cycles[1] == 0


def test_dataflow_limit_bounds_benchmark():
    from repro.benchmarks.suite import compile_benchmark, run_program
    from repro.evaluation.pipeline import machine_cycles, \
        superblock_regions
    program = compile_benchmark("conc30")
    result = run_program(program)
    region_set = superblock_regions(program, result, 48)
    limit = dataflow_limit_cycles(region_set, ideal("dataflow"))
    achieved = machine_cycles(region_set, ideal("ideal_tr"))
    assert 0 < limit <= achieved


# -- property-based: random compiled programs --------------------------------

LIBRARY = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
rev([], A, A).
rev([H|T], A, R) :- rev(T, [H|A], R).
"""


def _plist(items):
    return "[%s]" % ",".join(str(i) for i in items)


@st.composite
def sources(draw):
    xs = draw(st.lists(st.integers(-5, 5), max_size=5))
    ys = draw(st.lists(st.integers(-5, 5), max_size=4))
    body = draw(st.sampled_from([
        "app({xs}, {ys}, R), write(R)",
        "rev({xs}, [], R), write(R)",
        "app(A, B, {xs}), write(A), write(B), nl, fail",
    ])).format(xs=_plist(xs), ys=_plist(ys))
    return (LIBRARY
            + "main :- %s, nl.\n" % body
            + "main :- write(none), nl.\n")


@settings(max_examples=25, deadline=None)
@given(sources())
def test_passes_converge_and_agree_on_compiled_programs(source):
    program = translate_module(compile_source(source))
    cfg = Cfg(program)
    reachable = reachable_blocks(cfg)

    rd = ReachingDefinitions(cfg)
    rd_solution = solve(cfg, rd)
    cc_solution = solve(cfg, CopyConstants(cfg))
    ae = AvailableExpressions(cfg)
    ae_solution = solve(cfg, ae)
    lv_solution = solve(cfg, LiveRegisters(cfg))

    for solution in (rd_solution, cc_solution, ae_solution, lv_solution):
        assert set(solution.in_of) == reachable
        assert max(solution.visits.values()) < 200
    for start, value in ae_solution.in_of.items():
        assert value <= frozenset(ae.universe)
    # A reachable read must be fed by some reaching definition site.
    instructions = program.instructions
    for start in reachable:
        block = cfg.block_at[start]
        known = {name for _pc, name in rd.sites(rd_solution.in_of[start])}
        for pc in range(block.start, block.end):
            known.update(instructions[pc].writes())
    # Dead writes are effect-free and reachable.
    for pc in dead_writes(cfg):
        assert cfg.blocks[cfg.block_of_pc[pc]].start in reachable
        assert instructions[pc].op not in ("st", "esc")


@settings(max_examples=15, deadline=None)
@given(sources())
def test_region_facts_are_consistent_on_compiled_regions(source):
    program = translate_module(compile_source(source))
    result = Emulator(program, max_steps=2_000_000).run()
    cfg = Cfg(program)
    config = ideal("prop")
    for block in cfg.blocks:
        if result.counts[block.start] == 0:
            continue
        ops = program.instructions[block.start:block.end]
        facts = RegionMemoryFacts(ops)
        positions = sorted(facts._base)
        for a in range(len(positions)):
            for b in range(a + 1, len(positions)):
                i, j = positions[a], positions[b]
                kind = facts.classify(i, j)
                assert kind in ("must", "independent", "may")
                assert facts.classify(j, i) == kind
        schedule = region_dependence_height(ops, config)
        # ASAP is a lower bound on any legal schedule of the region.
        baseline = region_dependence_height(ops, config,
                                            facts=facts)
        assert max(schedule.cycles, default=0) \
            == max(baseline.cycles, default=0)
