"""Timing replay: exact cycle accounting on constructed regions."""

import pytest

from repro.terms import SymbolTable, tags
from repro.intcode.program import Builder
from repro.compaction.machine_model import sequential, vliw
from repro.compaction.scheduler import schedule_region
from repro.compaction.transform import Region
from repro.evaluation.simulator import (
    replay_region, replay_program, dynamic_region_stats)


def build_region(fill):
    b = Builder(SymbolTable())
    b.label("$start")
    fill(b)
    program = b.finish()
    region = Region(0, len(program))
    return program, region


def test_straight_line_region_cost_is_length_times_entries():
    def fill(b):
        b.ldi_int("a", 1)
        b.ldi_int("b", 2)
        b.alu("add", "c", "a", rb="b")
        b.halt(0)
    program, region = build_region(fill)
    config = sequential()
    schedule = schedule_region(program.instructions, config)
    counts = [10] * len(program)
    taken = [0] * len(program)
    taken[3] = 10  # the halt exits
    cycles = replay_region(program, region, schedule, counts, taken)
    # 4 issue cycles + taken penalty 1, per entry.
    assert cycles == 10 * (schedule.exit_cost(3))


def test_branch_exit_charged_at_branch_cycle():
    def fill(b):
        b.ldi_int("a", 1)
        b.btag("a", tags.TINT, "out")
        b.ldi_int("b", 2)
        b.ldi_int("c", 3)
        b.label("out")
        b.halt(0)
    program, region_all = build_region(fill)
    region = Region(0, 4)  # up to (excluding) the halt
    config = sequential()
    schedule = schedule_region(program.instructions[0:4], config)
    counts = [100, 100, 70, 70, 100]
    taken = [0, 30, 0, 0, 0]
    cycles = replay_region(program, region, schedule, counts, taken)
    expected = 30 * schedule.exit_cost(1) + 70 * schedule.fall_through_cost
    assert cycles == expected


def test_region_with_no_entries_costs_nothing():
    def fill(b):
        b.ldi_int("a", 1)
        b.halt(0)
    program, region = build_region(fill)
    schedule = schedule_region(program.instructions, sequential())
    assert replay_region(program, region, schedule,
                         [0, 0], [0, 0]) == 0


def test_more_exits_than_entries_is_an_error():
    def fill(b):
        b.ldi_int("a", 1)
        b.btag("a", tags.TINT, "$start")
    program, region = build_region(fill)
    schedule = schedule_region(program.instructions, sequential())
    with pytest.raises(AssertionError):
        replay_region(program, region, schedule, [5, 5], [0, 9])


def test_replay_program_sums_regions():
    def fill(b):
        b.ldi_int("a", 1)
        b.jmp("second")
        b.label("second")
        b.ldi_int("b", 2)
        b.halt(0)
    program, _ = build_region(fill)
    regions = [Region(0, 2), Region(2, 4)]
    config = vliw(1)
    schedules = [schedule_region(program.instructions[r.start:r.end],
                                 config) for r in regions]
    counts = [7, 7, 7, 7]
    taken = [0, 0, 0, 0]
    total = replay_program(program, regions, schedules, counts, taken)
    each = [replay_region(program, r, s, counts, taken)
            for r, s in zip(regions, schedules)]
    assert total == sum(each)


def test_dynamic_region_stats():
    def fill(b):
        b.ldi_int("a", 1)
        b.ldi_int("b", 1)
        b.halt(0)
        b.ldi_int("c", 1)
        b.halt(0)
    program, _ = build_region(fill)
    regions = [Region(0, 3), Region(3, 5)]
    counts = [10, 10, 10, 30, 30]
    mean, entries = dynamic_region_stats(program, regions, counts)
    assert entries == 40
    assert abs(mean - (10 * 3 + 30 * 2) / 40) < 1e-9
