"""Dependence DAG: every dependence class of section 4.3."""

from repro.intcode.ici import Ici
from repro.analysis.dependence import build_dag


def dag_for(instructions, off_live=None, reg_mask=None, bbl=0):
    durations = [1] * len(instructions)
    return build_dag(instructions, durations, off_live, reg_mask,
                     branch_branch_latency=bbl)


def edges(dag):
    return {(pred, index, latency)
            for index in range(dag.n)
            for pred, latency in dag.preds[index]}


def test_raw_edge_carries_producer_latency():
    ops = [Ici("ld", rd="a", ra="H", imm=0),
           Ici("add", rd="b", ra="a", rb="a")]
    dag = build_dag(ops, durations=[2, 1])
    assert (0, 1, 2) in edges(dag)


def test_war_allows_same_cycle():
    ops = [Ici("add", rd="x", ra="r", rb="r"),
           Ici("mov", rd="r", ra="s")]
    dag = dag_for(ops)
    assert (0, 1, 0) in edges(dag)


def test_waw_strictly_ordered():
    ops = [Ici("mov", rd="r", ra="a"),
           Ici("mov", rd="r", ra="b")]
    dag = dag_for(ops)
    assert (0, 1, 1) in edges(dag)


def test_loads_between_stores_are_ordered():
    ops = [Ici("st", ra="x", rb="H", imm=0),
           Ici("ld", rd="y", ra="H", imm=1),
           Ici("st", ra="z", rb="H", imm=2)]
    dag = dag_for(ops)
    assert (0, 1, 1) in edges(dag)   # store -> load
    assert (1, 2, 0) in edges(dag)   # load -> store (issue order)
    assert (0, 2, 1) in edges(dag)   # store -> store


def test_independent_loads_unordered():
    ops = [Ici("ld", rd="x", ra="H", imm=0),
           Ici("ld", rd="y", ra="H", imm=1)]
    dag = dag_for(ops)
    assert not edges(dag)


def test_branch_order_preserved():
    ops = [Ici("btag", ra="a", tag=1, label="L"),
           Ici("btag", ra="b", tag=1, label="L")]
    dag = dag_for(ops, bbl=0)
    assert (0, 1, 0) in edges(dag)
    dag = dag_for(ops, bbl=1)
    assert (0, 1, 1) in edges(dag)


def test_ops_cannot_sink_below_a_branch():
    ops = [Ici("add", rd="x", ra="a", rb="b"),
           Ici("btag", ra="c", tag=1, label="L")]
    dag = dag_for(ops)
    assert (0, 1, 0) in edges(dag)


def test_store_never_moves_above_branch():
    ops = [Ici("btag", ra="c", tag=1, label="L"),
           Ici("st", ra="x", rb="H", imm=0)]
    dag = dag_for(ops)
    assert (0, 1, 1) in edges(dag)


def test_escape_never_moves_above_branch_and_stays_ordered():
    ops = [Ici("btag", ra="c", tag=1, label="L"),
           Ici("esc", esc="write", ra="x"),
           Ici("esc", esc="nl")]
    dag = dag_for(ops)
    assert (0, 1, 1) in edges(dag)
    assert (1, 2, 1) in edges(dag)


def test_off_live_write_pinned_below_branch():
    masks = {0: 0b10}
    reg_mask = {"x": 0b10, "y": 0b100}.get
    ops = [Ici("btag", ra="c", tag=1, label="L"),
           Ici("add", rd="x", ra="a", rb="b"),
           Ici("add", rd="y", ra="a", rb="b")]
    dag = build_dag(ops, [1, 1, 1], masks, reg_mask)
    assert (0, 1, 1) in edges(dag)        # x live off-trace: pinned
    assert (0, 2, 1) not in edges(dag)    # y dead off-trace: speculable


def test_off_live_checked_against_every_prior_branch():
    # x is live off branch 0 but dead off branch 1: the write after
    # branch 1 must still be pinned below branch 0.
    masks = {0: 0b10, 1: 0}
    reg_mask = {"x": 0b10}.get
    ops = [Ici("btag", ra="c", tag=1, label="L"),
           Ici("btag", ra="d", tag=1, label="L"),
           Ici("add", rd="x", ra="a", rb="b")]
    dag = build_dag(ops, [1, 1, 1], masks, reg_mask)
    assert (0, 2, 1) in edges(dag)
    assert (1, 2, 1) not in edges(dag)


def test_heights_reflect_critical_path():
    ops = [Ici("ld", rd="a", ra="H", imm=0),
           Ici("add", rd="b", ra="a", rb="a"),
           Ici("add", rd="c", ra="b", rb="b")]
    dag = build_dag(ops, durations=[2, 1, 1])
    heights = dag.heights(lambda i: [2, 1, 1][i])
    assert heights == [4, 2, 1]


# -- disambiguation oracle and pruning recording ------------------------------

def test_independence_oracle_prunes_memory_edges():
    from repro.analysis.dataflow import RegionMemoryFacts
    ops = [Ici("st", ra="x", rb="E", imm=0),
           Ici("st", ra="y", rb="E", imm=1)]
    facts = RegionMemoryFacts(ops)
    pruned = []
    dag = build_dag(ops, [1, 1], independence=facts, pruned=pruned)
    assert not edges(dag)
    assert pruned == [("mem", 0, 1)]


def test_oracle_keeps_must_alias_pairs_ordered():
    from repro.analysis.dataflow import RegionMemoryFacts
    ops = [Ici("st", ra="x", rb="E", imm=0),
           Ici("ld", rd="y", ra="E", imm=0)]
    facts = RegionMemoryFacts(ops)
    pruned = []
    dag = build_dag(ops, [1, 1], independence=facts, pruned=pruned)
    assert (0, 1, 1) in edges(dag)
    assert pruned == []


def test_oracle_orders_pairs_transitively_broken_by_pruning():
    # st E+0 ; st H+0 ; st E+0 — the middle store is independent of
    # both, but the outer pair must stay ordered even though the
    # per-bank chain through the middle op is gone.
    from repro.analysis.dataflow import RegionMemoryFacts
    ops = [Ici("st", ra="x", rb="E", imm=0),
           Ici("st", ra="y", rb="H", imm=0),
           Ici("st", ra="z", rb="E", imm=0)]
    facts = RegionMemoryFacts(ops)
    dag = build_dag(ops, [1, 1], independence=facts)
    assert (0, 2, 1) in edges(dag)
    assert (0, 1, 1) not in edges(dag)
    assert (1, 2, 1) not in edges(dag)


def test_dead_write_prunes_only_incoming_waw():
    from repro.analysis.dataflow import region_dead_writes
    reg_mask = {"r": 0b1, "a": 0b10, "b": 0b100, "x": 0b1000}.get
    ops = [Ici("mov", rd="r", ra="a"),
           Ici("mov", rd="x", ra="r"),    # keeps write 0 alive
           Ici("mov", rd="r", ra="b")]    # dead: never observed
    dead = region_dead_writes(ops, live_out_mask=0b1000,
                              reg_mask=reg_mask)
    assert dead == frozenset({2})
    pruned = []
    dag = build_dag(ops, [1, 1, 1], dead=dead, pruned=pruned)
    assert (0, 2, 1) not in edges(dag)    # WAW into the dead write
    assert (0, 1, 1) in edges(dag)        # RAW stays
    assert (1, 2, 0) in edges(dag)        # WAR stays
    assert ("waw", 0, 2) in pruned


def test_live_waw_edges_survive_pruning():
    from repro.analysis.dataflow import region_dead_writes
    reg_mask = {"r": 0b1, "a": 0b10, "b": 0b100}.get
    ops = [Ici("mov", rd="r", ra="a"),
           Ici("mov", rd="r", ra="b")]
    # r is live out of the region: the *later* write is observed, so
    # the WAW edge into it must survive (only the shadowed first write
    # is dead, and that never licenses reordering).
    dead = region_dead_writes(ops, live_out_mask=0b1, reg_mask=reg_mask)
    assert dead == frozenset({0})
    dag = build_dag(ops, [1, 1], dead=dead)
    assert (0, 1, 1) in edges(dag)
