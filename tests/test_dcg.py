"""DCG translator tests: unit translations, property-based round trips
and the hand-threaded reference differential.

The round-trip property pinned here is the one the corpus relies on:
``translate → render → re-read → re-translate`` is a *fixed point* —
already-translated programs pass through unchanged (up to variable
renaming at the term level, byte-identical at the source level).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.dcg import (
    DcgError, alpha_equal, clause_to_string, is_dcg_rule,
    translate_dcg_rule, translate_source, translate_term)
from repro.corpus.workloads import DCG_WORKLOADS
from repro.reader import parse_program
from repro.terms import Atom, Struct, Var

from tests.conftest import assert_equivalent, interpret


def _parse_one(text):
    clauses = parse_program(text)
    assert len(clauses) == 1
    return clauses[0]


def _translated(text):
    return translate_dcg_rule(_parse_one(text))


# -- unit translations -------------------------------------------------------

def test_is_dcg_rule():
    assert is_dcg_rule(_parse_one("a --> [b]."))
    assert not is_dcg_rule(_parse_one("a :- b."))
    assert not is_dcg_rule(_parse_one("a."))


def test_empty_production_becomes_fact():
    clause = _translated("a --> [].")
    assert isinstance(clause, Struct)
    assert clause.indicator == ("a", 2)
    # a(S0, S0): both threading arguments are the same variable
    assert clause.args[0] is clause.args[1]


def test_terminals_thread_difference_list():
    clause = _translated("greeting --> [hello, world].")
    expected = _parse_one(
        "greeting(S0, S) :- S0 = [hello, world|S].")
    assert alpha_equal(clause, expected)


def test_nonterminal_chain():
    clause = _translated("s --> a, b.")
    expected = _parse_one("s(S0, S) :- a(S0, S1), b(S1, S).")
    assert alpha_equal(clause, expected)


def test_compound_head_and_embedded_goal():
    clause = _translated("count(N) --> [x], count(M), {N is M + 1}.")
    expected = _parse_one(
        "count(N, S0, S) :- S0 = [x|S1], count(M, S1, S), N is M + 1.")
    assert alpha_equal(clause, expected)


def test_cut_consumes_nothing():
    clause = _translated("a --> [t], !, [u].")
    expected = _parse_one(
        "a(S0, S) :- S0 = [t|S1], !, S1 = [u|S].")
    assert alpha_equal(clause, expected)


def test_negation_consumes_nothing():
    clause = _translated("a --> \\+ [z], [q].")
    expected = _parse_one(
        "a(S0, S) :- \\+ S0 = [z|S1], S0 = [q|S].")
    assert alpha_equal(clause, expected)


def test_disjunction_joins_both_branches():
    clause = _translated("a --> [x] ; [y].")
    head, body = clause.args
    assert head.indicator == ("a", 2)
    assert body.indicator == (";", 2)
    # both branches must land on the head's output variable
    out = head.args[1]

    def lands_on_out(branch):
        names = set()

        def collect(term):
            if isinstance(term, Var):
                names.add(id(term))
            elif isinstance(term, Struct):
                for arg in term.args:
                    collect(arg)

        collect(branch)
        return id(out) in names

    assert lands_on_out(body.args[0])
    assert lands_on_out(body.args[1])


def test_if_then_else_translates():
    source = "a --> ( [x] -> [y] ; [z] )."
    clause = _translated(source)
    body = clause.args[1]
    assert body.indicator == (";", 2)
    assert body.args[0].indicator == ("->", 2)


def test_non_dcg_clauses_pass_through():
    fact = _parse_one("likes(mary, wine).")
    assert translate_term(fact) is fact
    rule = _parse_one("a :- b, c.")
    assert translate_term(rule) is rule


# -- the unsupported subset raises -------------------------------------------

def test_pushback_rules_raise():
    with pytest.raises(DcgError):
        _translated("a, [x] --> [y].")


def test_variable_nonterminal_raises():
    with pytest.raises(DcgError):
        _translated("a --> X.")


def test_integer_body_raises():
    with pytest.raises(DcgError):
        _translated("a --> 42.")


def test_improper_terminal_list_raises():
    with pytest.raises(DcgError):
        _translated("a --> [x|_].")


def test_non_callable_head_raises():
    with pytest.raises(DcgError):
        translate_dcg_rule(Struct("-->", [Var("X"), Atom("[]")]))


def test_clause_to_string_rejects_non_clauses():
    with pytest.raises(DcgError):
        clause_to_string(Var("X"))


# -- fixed-point round trips -------------------------------------------------

SAMPLE = r"""
greeting --> [hello], name.
name --> [world].
count(0) --> [].
count(N) --> [x], count(M), {N is M + 1}.
choice --> ( [a] -> [b] ; [c] ), !.
neg --> \+ [z], [q].
main :- greeting([hello, world], []), write(ok), nl.
"""


def assert_fixed_point(source):
    translated = translate_source(source)
    again = translate_source(translated)
    assert again == translated
    for left, right in zip(parse_program(translated),
                           parse_program(again)):
        assert alpha_equal(left, right)


def test_sample_grammar_is_fixed_point():
    assert_fixed_point(SAMPLE)


@pytest.mark.parametrize("name", sorted(DCG_WORKLOADS))
def test_workload_translation_is_fixed_point(name):
    assert_fixed_point(DCG_WORKLOADS[name].dcg_source)


_TERMINALS = st.sampled_from(["a", "b", "c", "tok"])
_NONTERMINALS = st.sampled_from(["p", "q", "r"])


@st.composite
def dcg_bodies(draw, depth=2):
    if depth == 0:
        kind = draw(st.sampled_from(["terminals", "nonterminal",
                                     "empty", "goal", "cut"]))
    else:
        kind = draw(st.sampled_from(["terminals", "nonterminal",
                                     "empty", "goal", "cut", "conj",
                                     "disj", "ite", "neg"]))
    if kind == "terminals":
        items = draw(st.lists(_TERMINALS, min_size=1, max_size=3))
        return "[%s]" % ", ".join(items)
    if kind == "nonterminal":
        return draw(_NONTERMINALS)
    if kind == "empty":
        return "[]"
    if kind == "goal":
        return "{X is 1 + 2}"
    if kind == "cut":
        return "!"
    left = draw(dcg_bodies(depth=depth - 1))
    right = draw(dcg_bodies(depth=depth - 1))
    if kind == "conj":
        return "(%s, %s)" % (left, right)
    if kind == "disj":
        return "(%s ; %s)" % (left, right)
    if kind == "ite":
        third = draw(dcg_bodies(depth=0))
        return "(%s -> %s ; %s)" % (left, right, third)
    return "\\+ (%s)" % left


@settings(max_examples=120, deadline=None)
@given(dcg_bodies())
def test_random_rules_round_trip(body):
    """translate → render → re-read → re-translate is a fixed point."""
    source = "p --> %s.\n" % body
    assert_fixed_point(source)


@settings(max_examples=60, deadline=None)
@given(dcg_bodies())
def test_rendered_clause_reparses_alpha_equal(body):
    clause = _translated("p --> %s." % body)
    reread = _parse_one(clause_to_string(clause))
    assert alpha_equal(clause, reread)


# -- hand-threaded reference differential ------------------------------------

# The same ab*c grammar twice: once as a DCG, once threaded by hand.
_DCG_GRAMMAR = """
s --> [a], bs, [c].
bs --> [].
bs --> [b], bs.
"""

_HAND_THREADED = """
s(S0, S) :- S0 = [a|S1], bs(S1, S2), S2 = [c|S].
bs(S, S).
bs(S0, S) :- S0 = [b|S1], bs(S1, S).
"""


def _accepts(definitions, tokens):
    source = definitions + (
        "main :- (s(%s, []) -> write(yes) ; write(no)), nl.\n" % tokens)
    ok, output = interpret(source)
    assert ok
    return output


@pytest.mark.parametrize("tokens", [
    "[a, c]", "[a, b, c]", "[a, b, b, b, c]", "[a, b]", "[b, c]",
    "[]", "[a, c, c]", "[c, b, a]",
])
def test_translation_matches_hand_threaded_reference(tokens):
    """The translated parse succeeds iff the hand-threaded one does."""
    translated = translate_source(_DCG_GRAMMAR)
    assert _accepts(translated, tokens) == _accepts(_HAND_THREADED,
                                                    tokens)


# -- the workloads themselves ------------------------------------------------

@pytest.mark.parametrize("name", sorted(DCG_WORKLOADS))
def test_workload_interpreter_emulator_agree(name):
    """Each translated workload runs identically on both engines."""
    result = assert_equivalent(DCG_WORKLOADS[name].source)
    assert result.succeeded


def test_workload_expected_outputs():
    """The application answers themselves (not just agreement)."""
    _, grammar_out = interpret(DCG_WORKLOADS["dcg_grammar"].source)
    assert grammar_out == "rules(8)\nterminals(8)\n"
    _, json_out = interpret(DCG_WORKLOADS["dcg_json"].source)
    assert json_out == "sum(2043)\nnodes(15)\n"
    _, calc_out = interpret(DCG_WORKLOADS["dcg_calc"].source)
    assert calc_out == "29\n94\n39\n"
