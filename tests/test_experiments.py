"""Experiment harness: each table/figure computes and the paper's
qualitative claims hold on our reproduction.

These tests exercise the full evaluation pipeline; results are memoised
on disk, so only the first run on a machine is expensive.
"""

import pytest

from repro.experiments import (
    figure2, figure3, figure4, table1, table2, table3, table4, table5,
    ALL_EXPERIMENTS)
from repro.intcode.ici import MEM, CTRL


@pytest.fixture(scope="module")
def fig2():
    return figure2.compute()


def test_figure2_memory_fraction_near_paper(fig2):
    """Paper: memory operations ~32% of dynamic instructions."""
    assert 0.25 < fig2["average"][MEM] < 0.40


def test_figure2_control_fraction_above_15_percent(fig2):
    assert fig2["average"][CTRL] > 0.15


def test_figure2_fractions_sum_to_one(fig2):
    for name, entry in fig2["benchmarks"].items():
        assert abs(sum(entry["mix"].values()) - 1.0) < 1e-9


def test_figure3_amdahl_bound_near_three(fig2):
    data = figure3.compute(fig2["average"][MEM])
    assert 2.5 < data["asymptote"] < 4.0
    overlapped = data["series"]["overlapped"]
    # Saturation: the last two points are equal (memory bound).
    assert abs(overlapped[-1] - overlapped[-2]) < 1e-9


def test_table1_claims():
    data = table1.compute()
    average = data["average"]
    # Basic-block limit near the paper's 1.65.
    assert 1.4 < average["bb_speedup"] < 1.9
    # Global compaction clearly better (paper: ~30% faster).
    assert data["trace_gain"] > 1.15
    # Regions lengthen substantially beyond basic blocks.
    assert average["trace_length"] > 2.5 * average["bb_length"]
    for entry in data["benchmarks"].values():
        assert entry["trace_speedup"] >= entry["bb_speedup"] - 0.05


def test_table2_branches_are_predictable():
    data = table2.compute()
    # Paper: average P_fp about 0.15 — far from the 0.5 of random flow.
    assert data["average"] < 0.25
    for entry in data["benchmarks"].values():
        assert 0.0 <= entry["p_fp"] <= 0.5


def test_figure4_mass_concentrated_near_zero():
    data = figure4.compute()
    assert data["weights"][0] > 0.3
    assert abs(sum(data["weights"]) - 1.0) < 1e-9


def test_figure4_refutes_90_50_rule():
    data = figure4.compute()
    backward = data["taken_rule"]["backward"]["mean_taken"]
    # Numeric code would have backward branches ~90% taken.
    assert backward < 0.8


def test_table3_shape():
    data = table3.compute()
    average = data["average"]
    # BAM near the paper's 1.58.
    assert 1.3 < average["bam"] < 1.9
    # Monotone unit scaling...
    units = [average["vliw%d" % n] for n in range(1, 6)]
    assert all(a <= b + 1e-9 for a, b in zip(units, units[1:]))
    # ...with saturation by 3-4 units (Amdahl): the 4->5 step is tiny.
    assert units[4] - units[3] < 0.05
    # And a visible gain from 1 to 3 units.
    assert units[2] - units[0] > 0.1
    # Every VLIW configuration beats the BAM stand-in on average.
    assert units[0] > average["bam"]


def test_table4_ratios():
    data = table4.compute()
    # Paper: SYMBOL-3 ~0.83x BAM; ours should be the same order.
    assert 0.5 < data["mean_bam_over_symbol3"] < 1.6
    assert 0.3 < data["nreverse_mlips"] < 5.0


def test_table5_prototype_speedup_near_paper():
    data = table5.compute()
    # Paper: 1.9 average over the matched sequential machine.
    assert 1.5 < data["average_speedup"] < 2.5
    assert data["average_speedup"] > data["average_bam"]


def test_all_experiments_render_text():
    for name, module in ALL_EXPERIMENTS.items():
        text = module.render()
        assert isinstance(text, str) and len(text) > 100, name
