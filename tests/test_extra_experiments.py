"""Beyond-the-paper studies: ablations, future work, registers, the
Warren baseline.  These reuse the on-disk evaluation cache, so they are
cheap after the first full run on a machine."""


from repro.experiments import ablations, future_work, registers, \
    wam_baseline, EXTRA_EXPERIMENTS

SMALL = ["nreverse", "qsort"]


def test_ablation_memory_ports_monotone():
    data = ablations.memory_ports(SMALL, ports=(1, 2))
    assert data["speedup"][1] >= data["speedup"][0] - 1e-9


def test_ablation_speculation_helps():
    data = ablations.speculation(SMALL)
    assert data["spec_on"] >= data["spec_off"]


def test_ablation_inter_unit_penalty_never_helps():
    data = ablations.inter_unit_moves(SMALL)
    assert data["free"] >= data["penalty"] - 1e-9


def test_ablation_tail_dup_budget_lengthens_regions():
    rows = ablations.tail_dup_budget(SMALL, budgets=(0, 48))
    assert rows[1]["length"] >= rows[0]["length"]


def test_future_work_dynamic_bounds_static():
    data = future_work.dynamic_vs_static(SMALL)
    for entry in data["benchmarks"].values():
        assert entry["dynamic"] >= entry["static"] * 0.95
    assert 0 < data["average"]["captured"] <= 1.05


def test_future_work_multibank_ordering():
    banks = future_work.multibank(SMALL)
    assert banks["banked"] >= banks["shared"] - 1e-9
    assert banks["banked4"] >= banks["banked"] - 1e-9


def test_register_pressure_shapes():
    data = registers.benchmark_pressure("nreverse")
    assert data["mean_maxlive"] > 1
    fractions = data["spill_fraction"]
    assert fractions[8] >= fractions[16] >= fractions[32]
    assert 0.0 <= fractions[32] <= 1.0


def test_wam_baseline_ratio_above_one():
    bam_cycles, wam_cycles = wam_baseline.benchmark_ratio("nreverse")
    assert wam_cycles > bam_cycles


def test_extras_registry_renders():
    for name, module in EXTRA_EXPERIMENTS.items():
        render = getattr(module, "render", None) \
            or getattr(module, "render_all")
        assert callable(render), name
