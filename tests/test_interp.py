"""Reference interpreter semantics: resolution, cut, control, builtins."""

import pytest

from repro.interp import Engine, PrologError
from repro.interp.unify import unify, undo_to, evaluate, ArithmeticError_
from repro.reader import parse_term
from repro.terms import Var, Int, Atom, Struct


def run(source, query="main"):
    engine = Engine()
    engine.consult(source)
    ok = engine.run_query(query)
    return ok, engine.output_text()


def count_solutions(source, query, limit=100):
    engine = Engine()
    engine.consult(source)
    goal = parse_term(query)
    return sum(1 for _ in engine.solutions(goal, limit=limit))


# -- resolution ----------------------------------------------------------


def test_fact_succeeds():
    assert run("p(a). main :- p(a).")[0]


def test_unbound_query_binds():
    ok, out = run("p(a). main :- p(X), write(X).")
    assert ok and out == "a"


def test_failure():
    assert not run("p(a). main :- p(b).")[0]


def test_backtracking_order_is_source_order():
    ok, out = run("p(1). p(2). p(3). main :- p(X), write(X), fail. main.")
    assert ok and out == "123"


def test_recursion():
    ok, out = run("""
        len([], 0).
        len([_|T], N) :- len(T, M), N is M + 1.
        main :- len([a,b,c], N), write(N).
    """)
    assert ok and out == "3"


def test_all_solutions_counted():
    assert count_solutions("p(1). p(2). p(3).", "p(_)") == 3


def test_undefined_predicate_raises():
    with pytest.raises(PrologError):
        run("main :- undefined_thing(1).")


# -- cut -----------------------------------------------------------------


def test_cut_prunes_clause_alternatives():
    assert count_solutions("p(1) :- !. p(2).", "p(_)") == 1


def test_cut_prunes_goal_alternatives_to_its_left():
    assert count_solutions("q(1). q(2). p(X) :- q(X), !.", "p(_)") == 1


def test_cut_is_local_to_predicate():
    # The cut inside q must not prune p's alternatives.
    assert count_solutions("q :- !. p(1) :- q. p(2).", "p(_)") == 2


def test_cut_after_call():
    ok, out = run("""
        max(X, Y, X) :- X >= Y, !.
        max(_, Y, Y).
        main :- max(2, 7, M1), max(9, 3, M2), write(M1-M2).
    """)
    assert ok and out == "-(7,9)"


def test_cut_fail_combination():
    assert not run("p :- !, fail. p. main :- p.")[0]


# -- control constructs ----------------------------------------------------


def test_disjunction_both_branches():
    assert count_solutions("p(X) :- (X = 1 ; X = 2).", "p(_)") == 2


def test_if_then_else_then_branch():
    ok, out = run("main :- (1 < 2 -> write(yes) ; write(no)).")
    assert ok and out == "yes"


def test_if_then_else_else_branch():
    ok, out = run("main :- (2 < 1 -> write(yes) ; write(no)).")
    assert ok and out == "no"


def test_if_then_else_commits_to_first_condition_solution():
    source = "q(1). q(2). main :- (q(X) -> write(X) ; true), fail. main."
    ok, out = run(source)
    assert ok and out == "1"


def test_negation_as_failure():
    ok, _ = run("p(a). main :- \\+ p(b).")
    assert ok
    ok, _ = run("p(a). main :- \\+ p(a).")
    assert not ok


def test_negation_undoes_bindings():
    ok, out = run("p(a). main :- \\+ (p(X), fail), write(X).")
    assert ok and out.startswith("_")


def test_call_meta():
    assert run("p(a). main :- call(p(a)).")[0]


# -- builtins ---------------------------------------------------------------


def test_unify_builtin():
    ok, out = run("main :- X = f(Y), Y = 3, write(X).")
    assert ok and out == "f(3)"


def test_not_unify_builtin():
    assert run("main :- f(a) \\= f(b).")[0]
    assert not run("main :- f(X) \\= f(b).")[0]


def test_is_evaluates():
    ok, out = run("main :- X is 2 + 3 * 4, write(X).")
    assert ok and out == "14"


def test_integer_division_truncates_toward_zero():
    ok, out = run("main :- X is -7 // 2, Y is 7 // -2, write(X-Y).")
    assert ok and out == "-(-3,-3)"


def test_mod():
    ok, out = run("main :- X is 7 mod 3, write(X).")
    assert ok and out == "1"


def test_comparisons():
    assert run("main :- 1 < 2, 2 =< 2, 3 > 1, 3 >= 3, 4 =:= 4, 4 =\\= 5.")[0]


def test_structural_equality():
    assert run("main :- f(a, [1]) == f(a, [1]).")[0]
    assert run("main :- f(a) \\== f(b).")[0]
    assert not run("main :- X == Y.")[0]
    assert run("main :- X = Y, X == Y.")[0]


def test_type_tests():
    assert run("main :- var(_), nonvar(a), atom(a), integer(1), "
               "atomic(a), atomic(1).")[0]
    assert not run("main :- atom([a]).")[0]
    assert not run("main :- var(a).")[0]


def test_functor_decompose():
    ok, out = run("main :- functor(f(a,b), N, A), write(N/A).")
    assert ok and out == "/(f,2)"


def test_functor_construct():
    ok, out = run("main :- functor(T, f, 2), write(T).")
    assert ok and out.startswith("f(_")


def test_arg():
    ok, out = run("main :- arg(2, f(a,b,c), X), write(X).")
    assert ok and out == "b"


def test_is_with_unbound_raises():
    with pytest.raises(PrologError):
        run("main :- X is Y + 1.")


# -- unification core ---------------------------------------------------------


def test_unify_undo_restores_bindings():
    trail = []
    x = Var("X")
    assert unify(x, Int(1), trail)
    assert x.ref == Int(1)
    undo_to(trail, 0)
    assert x.ref is None


def test_unify_struct_recursive():
    trail = []
    x, y = Var("X"), Var("Y")
    a = Struct("f", [x, Int(2)])
    b = Struct("f", [Int(1), y])
    assert unify(a, b, trail)
    assert x.ref == Int(1) and y.ref == Int(2)


def test_unify_mismatch_fails():
    assert not unify(Struct("f", [Int(1)]), Struct("g", [Int(1)]), [])
    assert not unify(Atom("a"), Int(1), [])


def test_evaluate_expression_tree():
    term = parse_term("(2 + 3) * 4 - 1")
    assert evaluate(term) == 19


def test_evaluate_unbound_raises():
    with pytest.raises(ArithmeticError_):
        evaluate(Var("X"))


def test_directive_runs_on_consult():
    engine = Engine()
    engine.consult(":- X = 1, write(X). p(a).")
    assert engine.output_text() == "1"
