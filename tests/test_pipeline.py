"""End-to-end evaluation pipeline: regions, cycles, speedups."""

import pytest

import repro
from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.evaluation.pipeline import (
    basic_block_regions, superblock_regions, machine_cycles)
from repro.compaction import sequential, bam_like, vliw, ideal, symbol3

SOURCE = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
main :- nrev([1,2,3,4,5,6,7,8], R), write(R), nl.
"""


@pytest.fixture(scope="module")
def pipeline():
    program = translate_module(compile_source(SOURCE))
    result = run_program(program)
    return program, result


def test_sequential_cycles_at_least_op_count(pipeline):
    program, result = pipeline
    regions = basic_block_regions(program, result)
    cycles = machine_cycles(regions, sequential())
    assert cycles >= result.steps


def test_parallel_machines_are_faster(pipeline):
    program, result = pipeline
    bb = basic_block_regions(program, result)
    tr = superblock_regions(program, result)
    seq = machine_cycles(bb, sequential())
    bam = machine_cycles(bb, bam_like())
    v3 = machine_cycles(tr, vliw(3))
    assert seq > bam > v3


def test_trace_beats_basic_blocks_on_same_machine(pipeline):
    program, result = pipeline
    bb = basic_block_regions(program, result)
    tr = superblock_regions(program, result)
    config = ideal()
    assert machine_cycles(tr, config) < machine_cycles(bb, config)


def test_unit_scaling_monotone(pipeline):
    program, result = pipeline
    tr = superblock_regions(program, result)
    cycles = [machine_cycles(tr, vliw(n)) for n in (1, 2, 3, 4, 5)]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))


def test_amdahl_bound_respected(pipeline):
    """No configuration may beat the single-memory-port bound."""
    program, result = pipeline
    from repro.intcode.ici import OP_CLASS, MEM
    mem_ops = sum(count for pc, count in enumerate(result.counts)
                  if count and OP_CLASS[program.instructions[pc].op] == MEM)
    tr = superblock_regions(program, result)
    assert machine_cycles(tr, ideal()) >= mem_ops


def test_prototype_slower_than_ideal_model(pipeline):
    program, result = pipeline
    tr = superblock_regions(program, result)
    assert machine_cycles(tr, symbol3()) >= machine_cycles(tr, vliw(3))


def test_superblock_transform_checked_against_original(pipeline):
    program, result = pipeline
    region_set = superblock_regions(program, result)
    assert region_set.counts[region_set.regions[0].start] >= 0
    entries = sum(region_set.counts[r.start] for r in region_set.regions)
    assert entries > 0


def test_measure_speedup_api():
    program = repro.compile_prolog(SOURCE)
    speedup = repro.measure_speedup(program, repro.vliw(3))
    assert 1.2 < speedup < 4.0
    bb_speedup = repro.measure_speedup(program, repro.ideal(),
                                       regioning="bb")
    assert 1.0 < bb_speedup < speedup + 1.5


def test_compile_and_emulate_api():
    program = repro.compile_prolog("main :- X = 1, write(X), nl.")
    result = repro.emulate(program)
    assert result.succeeded
    assert result.output == "1\n"


def test_analysis_prune_never_slows_and_verifies(pipeline):
    # The dataflow oracle only removes false dependences, so with the
    # hook on every machine is at least as fast — and every pruned edge
    # must survive the independent checker's re-proof (machine_cycles
    # raises on a claim it cannot re-establish).
    program, result = pipeline
    tr = superblock_regions(program, result)
    for make in (lambda: vliw(3), lambda: ideal()):
        base_config = make()
        pruned_config = make()
        pruned_config.analysis_prune = True
        base = machine_cycles(tr, base_config)
        pruned = machine_cycles(tr, pruned_config, verify=True)
        assert pruned <= base


def test_analysis_prune_off_is_byte_identical(pipeline):
    # Default configs never consult the oracle: same cycles as always.
    program, result = pipeline
    tr = superblock_regions(program, result)
    config = vliw(3)
    assert config.analysis_prune is False
    assert machine_cycles(tr, config) == machine_cycles(tr, vliw(3))
