"""ICI optimiser: the passes shrink code and never change behaviour."""

import pytest

from repro.terms import SymbolTable
from repro.intcode.program import Builder
from repro.intcode.optimize import optimize_program
from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.benchmarks import compile_benchmark


def build(fill):
    b = Builder(SymbolTable())
    b.label("$start")
    fill(b)
    b.halt(0)
    return b.finish()


def test_copy_propagation_rewrites_uses():
    def fill(b):
        b.ldi_int("a", 1)
        b.mov("b", "a")
        b.alu("add", "c", "b", rb="b")
        b.st("c", "H", 0)
    program = build(fill)
    optimized, stats = optimize_program(program)
    adds = [i for i in optimized.instructions if i.op == "add"]
    assert adds[0].ra == "a" and adds[0].rb == "a"
    assert stats.copies_propagated >= 1


def test_dead_move_removed():
    def fill(b):
        b.ldi_int("a", 1)
        b.mov("b", "a")      # b never used again
        b.st("a", "H", 0)
    program = build(fill)
    optimized, stats = optimize_program(program)
    assert stats.dead_removed >= 1
    assert not [i for i in optimized.instructions if i.op == "mov"]


def test_live_out_values_not_removed():
    def fill(b):
        b.ldi_int("a", 1)
        done = b.fresh_label("next")
        b.jmp(done)
        b.label(done)
        b.st("a", "H", 0)     # 'a' used in the NEXT block
    program = build(fill)
    optimized, _ = optimize_program(program)
    assert [i for i in optimized.instructions if i.op == "ldi"]


def test_constant_reuse_within_block():
    def fill(b):
        b.ldi_int("a", 7)
        b.ldi_int("b", 7)
        b.alu("add", "c", "a", rb="b")
        b.st("c", "H", 0)
    program = build(fill)
    optimized, stats = optimize_program(program)
    assert stats.constants_reused == 1
    adds = [i for i in optimized.instructions if i.op == "add"]
    assert adds[0].ra == adds[0].rb == "a"


def test_propagation_stops_at_redefinition():
    def fill(b):
        b.ldi_int("a", 1)
        b.mov("b", "a")
        b.ldi_int("a", 2)            # a redefined: copy is stale
        b.st("b", "H", 0)
    program = build(fill)
    optimized, _ = optimize_program(program)
    stores = [i for i in optimized.instructions if i.op == "st"]
    assert stores[0].ra == "b"
    result = _final_word(optimized)
    from repro.terms import tags
    assert tags.value_of(result) == 1


def _final_word(program):
    from tests.test_emulator import _step_all
    from repro.intcode import layout
    return _step_all(program)[layout.HEAP_BASE]


def test_labels_preserved():
    program = translate_module(compile_source("""
        p(a). p(b).
        main :- p(X), write(X), nl, fail.
        main.
    """))
    optimized, _ = optimize_program(program)
    for name in ("$start", "$fail", "$unify", "P:p/1", "P:main/0"):
        assert name in optimized.labels


@pytest.mark.parametrize("name", ["conc30", "qsort", "serialise",
                                  "queens_8", "mu", "crypt"])
def test_optimised_benchmarks_behave_identically(name):
    program = compile_benchmark(name)
    optimized, stats = optimize_program(program)
    assert len(optimized) < len(program)
    baseline = run_program(program)
    result = run_program(optimized)
    assert result.status == baseline.status
    assert result.output == baseline.output
    assert result.steps < baseline.steps


def test_optimiser_is_idempotent_in_behaviour():
    program = compile_benchmark("nreverse")
    once, _ = optimize_program(program)
    twice, stats = optimize_program(once)
    first = run_program(once)
    second = run_program(twice)
    assert first.output == second.output
    assert len(twice) <= len(once)


def test_shrink_statistics_reported():
    program = compile_benchmark("qsort")
    _, stats = optimize_program(program)
    assert stats.copies_propagated > 0
    assert stats.dead_removed > 0
    assert "propagated" in repr(stats)
