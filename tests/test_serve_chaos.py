"""Chaos suite for the evaluation service.

The acceptance bar of the serving layer, pinned as tests:

* a load test of thousands of concurrent mixed requests returns
  **zero wrong answers** — every response byte-identical to the
  single-shot reference computation — and a warm hit rate over 90%
  on the repeated-query workload;
* the same holds with ``serve.request`` and ``cache.shard`` faults
  armed (transient failures retry, corruption quarantines and heals);
* SIGTERM during load drains in-flight requests and exits 0;
* SIGKILL of a pool worker mid-request trips the circuit breaker and
  the next request is still answered, degraded, by the reference
  backend.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.evaluation.cache import CacheStore
from repro.evaluation.parallel import EvaluationEngine
from repro.serve import ServiceConfig, ServiceThread
from repro.serve.loadtest import (
    run_load_test, validate_serve_bench, write_serve_bench)
from repro.serve.ops import (
    canonical_json, compute_result, parse_request)
from repro.testing import faults

pytestmark = pytest.mark.chaos

BENCH = "divide10"


def _post(port, op, body, timeout=300):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request("POST", "/v1/" + op, body=json.dumps(body))
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        connection.close()


@pytest.fixture
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_SPEC, raising=False)
    monkeypatch.delenv(faults.ENV_STATE, raising=False)
    monkeypatch.delenv("REPRO_CACHE_SHARDS", raising=False)


# --------------------------------------------------------------------------
# The load test: thousands of concurrent mixed requests, zero wrong
# answers, >90% warm hit rate.

@pytest.mark.slow
def test_load_test_2000_requests_byte_identical(clean_faults,
                                                tmp_path):
    document = run_load_test(requests=2000, concurrency=64, jobs=2,
                             shards=8)
    problems = validate_serve_bench(document)
    assert problems == [], problems
    assert document["wrong_answers"] == 0, document["wrong_detail"]
    assert document["requests"] == 2000
    assert document["outcomes"]["ok"] >= 1
    assert document["outcomes"]["failed"] == 0
    assert document["outcomes"]["unreachable"] == 0
    assert document["warm_hit_rate"] >= 0.9
    path = str(tmp_path / "BENCH_serve.json")
    write_serve_bench(document, path)
    assert validate_serve_bench(json.load(open(path))) == []


def test_load_test_under_faults_stays_correct(clean_faults,
                                              monkeypatch, tmp_path):
    monkeypatch.setenv(
        faults.ENV_SPEC,
        "serve.request=error:3,serve.request=shed:2,"
        "cache.shard=corrupt:2,cache.shard=error:1")
    monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "fuses"))
    document = run_load_test(requests=200, concurrency=32, jobs=2,
                             shards=8)
    problems = validate_serve_bench(document)
    assert problems == [], problems
    assert document["wrong_answers"] == 0, document["wrong_detail"]
    assert document["faults"] == os.environ[faults.ENV_SPEC]
    counters = document["server"]["counters"]
    # The armed transient errors were retried server-side, and the
    # injected corruption was quarantined — none reached a client as
    # a wrong answer.
    assert counters.get("serve.retries", 0) >= 1
    assert document["server"]["cache"]["quarantined"] >= 1


# --------------------------------------------------------------------------
# SIGTERM during load: graceful drain, exit 0.

def test_sigterm_during_inflight_request_drains_and_exits_zero(
        clean_faults, tmp_path):
    state = tmp_path / "fuses"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    # The in-flight request hangs 2s server-side, so SIGTERM lands
    # while it is executing; the drain must still answer it.
    env[faults.ENV_SPEC] = "serve.request=hang:1:2"
    env[faults.ENV_STATE] = str(state)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "1", "--shards", "2",
         "--cache-dir", str(tmp_path / "cas")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        line = process.stdout.readline()
        assert "listening on http://" in line, line
        port = int(line.rsplit(":", 1)[1].split()[0])
        outcome = {}

        def post():
            outcome["response"] = _post(
                port, "compile", {"benchmark": BENCH})

        client = threading.Thread(target=post)
        client.start()
        time.sleep(0.5)                    # request is now in flight
        process.send_signal(signal.SIGTERM)
        client.join(timeout=120)
        stdout, _ = process.communicate(timeout=120)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, stdout
    assert "drained after 1 request(s)" in stdout
    status, payload = outcome["response"]
    assert status == 200 and payload["ok"] is True


# --------------------------------------------------------------------------
# SIGKILL of a pool worker: breaker trips, service degrades, answers
# stay byte-identical.

def test_worker_sigkill_trips_breaker_and_degrades(clean_faults,
                                                   tmp_path):
    config = ServiceConfig(jobs=2, shards=2, breaker_threshold=1,
                           breaker_cooldown=3600.0, pool_restarts=2,
                           cache_root=str(tmp_path / "cas"))
    with faults.injected("parallel.task=crash:1",
                         str(tmp_path / "fuses")):
        with ServiceThread(config) as thread:
            first = {"benchmark": BENCH, "configs": ["seq"]}
            status, payload = _post(thread.port, "evaluate", first)
            # The killed worker was restarted and the answer computed;
            # the pool death was recorded against the breaker.
            assert status == 200, payload
            assert payload["ok"] is True
            second = {"benchmark": BENCH, "configs": ["seq"],
                      "tail_dup_budget": 32}     # distinct cache key
            status, degraded = _post(thread.port, "evaluate", second)
            assert status == 200, degraded
            assert degraded["meta"]["degraded"] is True
            assert degraded["meta"]["backend"] == "reference"
            connection = http.client.HTTPConnection(
                "127.0.0.1", thread.port, timeout=60)
            try:
                connection.request("GET", "/metrics")
                metrics = json.loads(
                    connection.getresponse().read().decode())
            finally:
                connection.close()
    assert any(snap["state"] == "open"
               for snap in metrics["breakers"].values()), metrics
    assert metrics["counters"]["serve.degraded"] >= 1
    # The degraded answer is byte-identical to a clean computation.
    engine = EvaluationEngine(jobs=1,
                              store=CacheStore(str(tmp_path / "ref")))
    try:
        spec, _ = parse_request("evaluate", second)
        expected = canonical_json(compute_result(spec, engine))
    finally:
        engine.close()
    assert canonical_json(degraded["result"]) == expected
