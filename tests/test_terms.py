"""Term model: construction, rendering, interning, hypothesis roundtrips."""

from hypothesis import given, strategies as st

from repro.terms import (
    Atom, Int, Var, Struct, make_list, deref, list_items, term_to_string,
    SymbolTable, NIL)
from repro.reader import parse_term


def test_atom_equality_by_name():
    assert Atom("a") == Atom("a")
    assert Atom("a") != Atom("b")
    assert hash(Atom("x")) == hash(Atom("x"))


def test_int_equality():
    assert Int(3) == Int(3)
    assert Int(3) != Int(4)


def test_var_identity_not_name():
    assert Var("X") is not Var("X")


def test_struct_requires_args():
    import pytest
    with pytest.raises(ValueError):
        Struct("f", [])


def test_make_list_and_items_roundtrip():
    items = [Int(1), Atom("a"), Int(2)]
    term = make_list(items)
    out, tail = list_items(term)
    assert out == items
    assert tail == NIL


def test_make_list_with_tail():
    tail_var = Var("T")
    term = make_list([Int(1)], tail_var)
    items, tail = list_items(term)
    assert items == [Int(1)]
    assert tail is tail_var


def test_deref_follows_chains():
    a, b = Var("A"), Var("B")
    a.ref = b
    b.ref = Int(9)
    assert deref(a) == Int(9)


def test_render_quoted_atom():
    assert term_to_string(Atom("Hello world")) == "'Hello world'"
    assert term_to_string(Atom("[]")) == "[]"
    assert term_to_string(Atom("+")) == "+"


def test_render_escapes_quotes():
    assert term_to_string(Atom("it's")) == r"'it\'s'"


def test_render_partial_list():
    term = make_list([Int(1)], Var("T"))
    assert term_to_string(term).startswith("[1|_")


def test_render_canonical_struct():
    term = Struct("f", [Int(1), Struct("g", [Atom("a")])])
    assert term_to_string(term) == "f(1,g(a))"


# -- symbol table ---------------------------------------------------------


def test_atoms_interned_stably():
    table = SymbolTable()
    index = table.atom("foo")
    assert table.atom("foo") == index
    assert table.atom_name(index) == "foo"


def test_functor_interning_keyed_by_arity():
    table = SymbolTable()
    f1 = table.functor("f", 1)
    f2 = table.functor("f", 2)
    assert f1 != f2
    assert table.functor_key(f2) == ("f", 2)
    assert table.functor_arity(f2) == 2


def test_nil_pre_interned():
    table = SymbolTable()
    assert table.atom("[]") == table.nil


# -- property: rendering parses back -----------------------------------


_atoms = st.sampled_from(["a", "b", "foo", "bar_baz", "[]", "+", "it's"])


def _terms(depth):
    if depth == 0:
        return st.one_of(_atoms.map(Atom),
                         st.integers(-1000, 1000).map(Int))
    sub = _terms(depth - 1)
    return st.one_of(
        _atoms.map(Atom),
        st.integers(-1000, 1000).map(Int),
        st.lists(sub, min_size=1, max_size=3).map(make_list),
        st.lists(sub, min_size=1, max_size=3).map(
            lambda args: Struct("f", args)),
    )


def _ground_equal(a, b):
    if isinstance(a, Atom):
        return isinstance(b, Atom) and a.name == b.name
    if isinstance(a, Int):
        return isinstance(b, Int) and a.value == b.value
    return (isinstance(b, Struct) and a.name == b.name
            and len(a.args) == len(b.args)
            and all(_ground_equal(x, y) for x, y in zip(a.args, b.args)))


@given(_terms(3))
def test_ground_term_rendering_parses_back(term):
    text = term_to_string(term)
    assert _ground_equal(parse_term(text), term)
