"""Generator invariants: determinism, lint-cleanliness, termination.

These are the standing guarantees the corpus sweep builds on — every
program the generator emits must be a *valid* differential test:
byte-identical regeneration from its seed (so failures are
reproducible), statically well-formed after compilation (`repro lint`
exit 0), and terminating well inside the step ceiling.
"""

import io
import subprocess
import sys

import pytest

from repro.bam import compile_source
from repro.corpus.generate import (
    BASE_SEED, DEFAULT_COUNT, GENERATOR_MAX_STEPS, SCHEME_NAMES,
    corpus_programs, corpus_seeds, generate_program)
from repro.intcode import optimize_program, translate_module

from tests.conftest import (
    assert_equivalent, assert_lint_clean, compile_and_run)

#: the seeds exercised in depth by this module (a fixed slice of the
#: default corpus; the full corpus runs under ``repro corpus``)
SAMPLE_SEEDS = corpus_seeds(count=12)


def test_corpus_shape():
    programs = corpus_programs(count=5)
    assert [p.seed for p in programs] == list(range(BASE_SEED,
                                                    BASE_SEED + 5))
    assert [p.name for p in programs] == [
        "gen%05d" % s for s in range(BASE_SEED, BASE_SEED + 5)]
    assert DEFAULT_COUNT >= 200


def test_regeneration_is_byte_identical():
    for seed in corpus_seeds(count=50):
        first = generate_program(seed)
        second = generate_program(seed)
        assert first.source == second.source
        assert first.schemes == second.schemes


def test_regeneration_is_byte_identical_across_processes():
    """Determinism must hold across interpreter invocations, not just
    within one process (no hash-seed or dict-order dependence)."""
    script = ("from repro.corpus.generate import generate_program\n"
              "import sys\n"
              "sys.stdout.write(generate_program(%d).source)\n"
              % BASE_SEED)
    outputs = {
        subprocess.run([sys.executable, "-c", script],
                       capture_output=True, text=True,
                       check=True).stdout
        for _ in range(2)}
    assert outputs == {generate_program(BASE_SEED).source}


def test_distinct_seeds_differ():
    sources = {generate_program(seed).source
               for seed in corpus_seeds(count=40)}
    assert len(sources) == 40


def test_scheme_coverage():
    """Every clause-skeleton scheme occurs within the default corpus."""
    seen = set()
    for seed in corpus_seeds():
        seen.update(generate_program(seed).schemes)
    assert seen == set(SCHEME_NAMES)


@pytest.mark.parametrize("seed", SAMPLE_SEEDS)
def test_generated_program_is_lint_clean(seed):
    program = translate_module(
        compile_source(generate_program(seed).source))
    assert_lint_clean(program)
    optimized, _ = optimize_program(program)
    assert_lint_clean(optimized, stage="optimize")


@pytest.mark.parametrize("seed", SAMPLE_SEEDS)
def test_generated_program_terminates_within_ceiling(seed):
    result = compile_and_run(generate_program(seed).source,
                             max_steps=GENERATOR_MAX_STEPS)
    assert result.succeeded
    # huge margin: a scheme regression would have to blow up 10x+
    assert result.steps < GENERATOR_MAX_STEPS // 10


@pytest.mark.parametrize("seed", SAMPLE_SEEDS)
def test_generated_program_differential(seed):
    """Interpreter and emulator agree on every sampled program."""
    assert_equivalent(generate_program(seed).source)


def test_repro_lint_cli_exit_zero(tmp_path):
    """The literal satellite contract: ``repro lint`` exits 0 on a
    generated program written to disk."""
    from repro.cli import main
    path = tmp_path / "gen.pl"
    path.write_text(generate_program(BASE_SEED).source)
    out, err = io.StringIO(), io.StringIO()
    status = main(["lint", str(path)], out=out, err=err)
    assert status == 0, err.getvalue()
    assert "clean" in out.getvalue()


def test_entry_queries_are_ground():
    """Every ``main/0`` goal is ground at entry: no variables appear in
    argument positions the program does not bind itself.  We verify the
    observable consequence — deterministic output that never renders an
    unbound variable."""
    for seed in SAMPLE_SEEDS:
        result = compile_and_run(generate_program(seed).source,
                                 max_steps=GENERATOR_MAX_STEPS)
        assert result.succeeded
        assert result.output  # every scheme writes its result
