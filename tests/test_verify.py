"""Independent schedule verifier: clean artefacts verify clean, and
seeded miscompiles — corrupted schedules, dropped/retargeted code after
the transform, aliased registers in a binding — are detected with the
right structured diagnostic."""

import pytest

from repro.analysis import (
    check_schedule, check_pruned_edges, check_transform, check_regions,
    check_allocation, off_live_names, format_diagnostics,
    VerificationError, raise_if_failed)
from repro.analysis.lint import Diagnostic
from repro.bam import compile_source
from repro.compaction import MachineConfig, Region, schedule_region
from repro.compaction.scheduler import Schedule
from repro.compaction.transform import form_superblocks
from repro.compaction.regalloc import Allocation, region_pressure
from repro.emulator import Emulator
from repro.intcode import translate_module
from repro.intcode.ici import Ici
from repro.intcode.program import Program

SOURCE = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app([1,2], [3], X), write(X), nl.
"""


def cfg(**kw):
    defaults = dict(n_units=4, mem_ports=1, mem_latency=2, ctrl_latency=2,
                    alu_latency=1, move_latency=1)
    defaults.update(kw)
    return MachineConfig("test", **defaults)


def rules(diagnostics):
    return {d.rule for d in diagnostics}


def assert_clean(diagnostics):
    assert diagnostics == [], format_diagnostics(diagnostics)


# -- schedule legality: dependence rules -------------------------------------

STRAIGHT_LINE = [
    Ici("ld", rd="r1", ra="H", imm=0),
    Ici("add", rd="r2", ra="r1", rb="a0"),
    Ici("st", ra="r2", rb="E", imm=1),
    Ici("jmp", label="next"),
]


def test_scheduler_output_verifies_clean():
    config = cfg()
    schedule = schedule_region(STRAIGHT_LINE, config)
    assert_clean(check_schedule(STRAIGHT_LINE, schedule, config))


def test_corrupted_cycle_breaks_raw_latency():
    config = cfg()
    schedule = schedule_region(STRAIGHT_LINE, config)
    cycles = list(schedule.cycles)
    cycles[1] = cycles[0]            # consumer issued with its producer
    bad = Schedule(STRAIGHT_LINE, cycles, config)
    diags = check_schedule(STRAIGHT_LINE, bad, config)
    assert "raw-latency" in rules(diags)
    finding = next(d for d in diags if d.rule == "raw-latency")
    assert finding.pos == 1 and finding.stage == "schedule"


def test_war_violation():
    instructions = [
        Ici("add", rd="r2", ra="r1", rb="a0"),
        Ici("ldi", rd="r1", imm=7),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [2, 0], cfg()), cfg())
    assert "war-order" in rules(diags)


def test_waw_violation():
    instructions = [
        Ici("ldi", rd="r1", imm=1),
        Ici("ldi", rd="r1", imm=2),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], cfg()), cfg())
    assert "waw-order" in rules(diags)


def test_store_store_memory_order():
    instructions = [
        Ici("st", ra="a0", rb="H", imm=0),
        Ici("st", ra="a1", rb="H", imm=1),
    ]
    config = cfg(mem_ports=2)
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], config), config)
    assert "mem-order" in rules(diags)


def test_store_hoisted_above_branch():
    instructions = [
        Ici("btag", ra="a0", tag=0, label="off"),
        Ici("st", ra="a1", rb="H", imm=0),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [1, 0], cfg()), cfg())
    assert "store-speculated" in rules(diags)


def test_escape_hoisted_above_branch():
    instructions = [
        Ici("btag", ra="a0", tag=0, label="off"),
        Ici("esc", esc="write", ra="a1"),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], cfg()), cfg())
    assert "escape-speculated" in rules(diags)


def test_off_live_speculation_detected():
    instructions = [
        Ici("btag", ra="a0", tag=0, label="off"),
        Ici("ldi", rd="x", imm=1),
    ]
    schedule = Schedule(instructions, [0, 0], cfg())
    hot = check_schedule(instructions, schedule, cfg(),
                         off_live={0: {"x"}})
    cold = check_schedule(instructions, schedule, cfg(),
                          off_live={0: set()})
    assert "off-live-speculated" in rules(hot)
    assert_clean(cold)


def test_no_speculation_model_pins_all_writes():
    config = cfg(speculation=False)
    instructions = [
        Ici("btag", ra="a0", tag=0, label="off"),
        Ici("ldi", rd="x", imm=1),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], config), config)
    assert "off-live-speculated" in rules(diags)


def test_issue_order_rule():
    instructions = [
        Ici("add", rd="x", ra="a0", rb="a1"),
        Ici("jmp", label="next"),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [2, 0], cfg()), cfg())
    assert "issue-order" in rules(diags)


def test_single_way_machine_serialises_branches():
    config = cfg(multiway=False)
    instructions = [
        Ici("btag", ra="a0", tag=0, label="A"),
        Ici("btag", ra="a1", tag=0, label="B"),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], config), config)
    assert "branch-order" in rules(diags)


def test_escape_order_preserved():
    instructions = [
        Ici("esc", esc="write", ra="a0"),
        Ici("esc", esc="nl"),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], cfg()), cfg())
    assert "esc-order" in rules(diags)


def test_inter_unit_penalty_checked():
    config = cfg(inter_unit_penalty=1)
    instructions = [
        Ici("ldi", rd="x", imm=1),
        Ici("add", rd="y", ra="x", rb="a0"),
    ]
    bad = Schedule(instructions, [0, 1], config, units=[0, 1])
    ok = Schedule(instructions, [0, 1], config, units=[0, 0])
    assert "inter-unit-latency" in rules(
        check_schedule(instructions, bad, config))
    assert_clean(check_schedule(instructions, ok, config))


# -- schedule legality: resource rules ---------------------------------------

def test_memory_port_oversubscribed():
    instructions = [
        Ici("ld", rd="r1", ra="H", imm=0),
        Ici("ld", rd="r2", ra="E", imm=0),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], cfg()), cfg())
    assert "mem-port" in rules(diags)


def test_alu_slots_limited_by_units():
    config = cfg(n_units=1)
    instructions = [
        Ici("add", rd="x", ra="a0", rb="a1"),
        Ici("sub", rd="y", ra="a0", rb="a1"),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], config), config)
    assert "slot-class" in rules(diags)


def test_issue_width_limit():
    config = cfg(issue_width=1)
    instructions = [
        Ici("add", rd="x", ra="a0", rb="a1"),
        Ici("mov", rd="y", ra="a0"),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], config), config)
    assert "issue-width" in rules(diags)


def test_prototype_format_constraint():
    config = cfg(n_units=2, formats="prototype")
    instructions = [
        Ici("add", rd="x", ra="a0", rb="a1"),
        Ici("sub", rd="y", ra="a0", rb="a1"),
        Ici("jmp", label="next"),
    ]
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0, 0], config),
                           config)
    assert "format" in rules(diags)


def test_unit_double_booking():
    config = cfg(inter_unit_penalty=1)
    instructions = [
        Ici("add", rd="x", ra="a0", rb="a1"),
        Ici("sub", rd="y", ra="a0", rb="a1"),
    ]
    bad = Schedule(instructions, [0, 0], config, units=[0, 0])
    diags = check_schedule(instructions, bad, config)
    assert "unit-conflict" in rules(diags)


def test_schedule_shape_mismatch():
    instructions = [Ici("ldi", rd="x", imm=1), Ici("halt")]
    short = Schedule(instructions, [0], cfg())
    short.instructions = instructions
    diags = check_schedule(instructions, short, cfg())
    assert rules(diags) == {"schedule-shape"}


# -- transform equivalence ---------------------------------------------------

def _transformed(source=SOURCE, budget=48):
    program = translate_module(compile_source(source))
    baseline = Emulator(program, max_steps=2_000_000).run()
    transform = form_superblocks(program, baseline.counts, baseline.taken,
                                 tail_dup_budget=budget)
    return program, transform


def _copy_program(program):
    instructions = [Ici(i.op, i.rd, i.ra, i.rb, i.imm, i.tag, i.label,
                        i.esc) for i in program.instructions]
    return Program(instructions, dict(program.labels), program.symbols,
                   entry=program.entry)


def _first_reachable_payload(program):
    """pc of the first non-control op on the fall-through walk from the
    entry point (certainly visited by the bisimulation)."""
    pc = program.entry_pc
    while True:
        instruction = program.instructions[pc]
        if instruction.op == "jmp":
            pc = program.labels[instruction.label]
        elif instruction.is_branch:
            pc += 1
        elif instruction.op == "call":
            pc = program.labels[instruction.label]
        elif instruction.is_control:
            raise AssertionError("no payload op reachable")
        else:
            return pc


def test_transform_verifies_clean():
    program, transform = _transformed()
    assert_clean(check_transform(program, transform.program))
    assert_clean(check_regions(transform.program, transform.regions))


def test_corrupted_payload_detected():
    program, transform = _transformed()
    mutant = _copy_program(transform.program)
    victim = _first_reachable_payload(mutant)
    mutant.instructions[victim] = Ici("mov", rd="r999", ra="a0")
    diags = check_transform(program, mutant)
    assert "path-divergence" in rules(diags)


def test_dropped_instruction_detected():
    program, transform = _transformed()
    mutant = _copy_program(transform.program)
    victim = _first_reachable_payload(mutant)
    del mutant.instructions[victim]
    mutant.labels = {name: (pc - 1 if pc > victim else pc)
                     for name, pc in mutant.labels.items()}
    diags = check_transform(program, mutant)
    assert "path-divergence" in rules(diags)


def test_retargeted_branch_detected():
    # Point an off-trace exit somewhere that executes different code:
    # exactly the "compensation block dropped" failure mode.
    program, transform = _transformed()
    mutant = _copy_program(transform.program)
    for pc, instruction in enumerate(mutant.instructions):
        if not instruction.is_branch:
            continue
        old_target = mutant.labels[instruction.label]
        for name, target in mutant.labels.items():
            if name == instruction.label:
                continue
            same = (mutant.instructions[target].op
                    == mutant.instructions[old_target].op) \
                if target < len(mutant.instructions) else True
            if not same:
                mutant.instructions[pc] = Ici(
                    instruction.op, ra=instruction.ra,
                    rb=instruction.rb, tag=instruction.tag, label=name)
                diags = check_transform(program, mutant)
                assert "path-divergence" in rules(diags)
                return
    raise AssertionError("no retargetable branch found")


def test_region_cover_gap_detected():
    program = translate_module(compile_source(SOURCE))
    regions = [Region(0, 2), Region(3, len(program))]
    diags = check_regions(program, regions)
    assert "region-cover" in rules(diags)


def test_side_entrance_detected():
    program, transform = _transformed()
    heads = {region.start for region in transform.regions}
    interior = next(pc for pc in range(len(transform.program))
                    if pc not in heads)
    mutant = _copy_program(transform.program)
    mutant.labels["$sneak"] = interior
    diags = check_regions(mutant, transform.regions)
    assert "side-entrance" in rules(diags)


# -- off-live sets ----------------------------------------------------------

def test_off_live_names_at_branch_target():
    program = Program([
        Ici("ldi", rd="r1", imm=1),
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("ldi", rd="r2", imm=2),
        Ici("jmp", label="End"),
        Ici("add", rd="r3", ra="r1", rb="a0"),
        Ici("halt"),
    ], {"$start": 0, "L": 4, "End": 5}, None)
    masks = off_live_names(program, 0, 4)
    assert set(masks) == {1}
    assert "r1" in masks[1]
    assert "r2" not in masks[1]


# -- register allocation -----------------------------------------------------

ALLOC_REGION = [
    Ici("ldi", rd="x", imm=1),
    Ici("ldi", rd="y", imm=2),
    Ici("add", rd="z", ra="x", rb="y"),
    Ici("jmp", label="next"),
]


def _alloc_schedule():
    config = cfg()
    return Schedule(ALLOC_REGION, [0, 1, 2, 3], config)


def test_linear_scan_binding_verifies_clean():
    schedule = _alloc_schedule()
    allocation = region_pressure(ALLOC_REGION, schedule).allocate(16)
    assert_clean(check_allocation(ALLOC_REGION, schedule, allocation))


def test_aliased_registers_detected():
    schedule = _alloc_schedule()
    allocation = Allocation({"x": 1, "y": 1, "z": 2}, set(), {}, 16)
    diags = check_allocation(ALLOC_REGION, schedule, allocation)
    assert rules(diags) == {"phys-overlap"}
    assert "simultaneously live" in diags[0].message


def test_local_clashing_with_pinned_interface_register():
    schedule = _alloc_schedule()
    allocation = Allocation({"x": 0, "y": 1, "z": 2}, set(), {"H": 0}, 16)
    diags = check_allocation(ALLOC_REGION, schedule, allocation)
    assert "phys-overlap" in rules(diags)
    assert any("pinned" in d.message for d in diags)


def test_out_of_bank_assignment_detected():
    schedule = _alloc_schedule()
    allocation = Allocation({"x": 17, "y": 1, "z": 2}, set(), {}, 16)
    diags = check_allocation(ALLOC_REGION, schedule, allocation)
    assert "phys-out-of-bank" in rules(diags)


def test_unallocated_value_detected():
    schedule = _alloc_schedule()
    allocation = Allocation({"x": 0, "z": 2}, set(), {}, 16)
    diags = check_allocation(ALLOC_REGION, schedule, allocation)
    assert "unallocated" in rules(diags)
    assert any("y" in d.message for d in diags)


def test_spilled_and_allocated_is_contradictory():
    schedule = _alloc_schedule()
    allocation = Allocation({"x": 0, "y": 1, "z": 2}, {"x"}, {}, 16)
    diags = check_allocation(ALLOC_REGION, schedule, allocation)
    assert "phys-overlap" in rules(diags)


# -- error plumbing ----------------------------------------------------------

def test_raise_if_failed():
    raise_if_failed([])              # no-op on clean results
    finding = Diagnostic("schedule", "raw-latency", "boom", pos=3)
    with pytest.raises(VerificationError) as info:
        raise_if_failed([finding], "context here")
    assert "context here" in str(info.value)
    assert "raw-latency" in str(info.value)
    assert info.value.diagnostics == [finding]


# -- pruned dependence edges: the analyzer is never trusted ------------------

def test_pruned_mem_edge_accepted_when_provably_independent():
    ops = [Ici("st", ra="r1", rb="E", imm=0),
           Ici("st", ra="r2", rb="E", imm=1)]
    assert_clean(check_pruned_edges(ops, [("mem", 0, 1)]))


def test_pruned_mem_edge_rejected_when_possibly_aliasing():
    ops = [Ici("st", ra="r1", rb="r9", imm=0),
           Ici("ld", rd="r2", ra="r8", imm=0)]
    diags = check_pruned_edges(ops, [("mem", 0, 1)])
    assert rules(diags) == {"pruned-mem"}


def test_pruned_mem_edge_rejected_after_base_redefinition():
    ops = [Ici("st", ra="r1", rb="r9", imm=0),
           Ici("add", rd="r9", ra="r9", rb="r1"),
           Ici("ld", rd="r2", ra="r9", imm=1)]
    diags = check_pruned_edges(ops, [("mem", 0, 2)])
    assert rules(diags) == {"pruned-mem"}


def test_pruned_waw_edge_needs_a_dead_write_proof():
    ops = [Ici("mov", rd="r1", ra="a0"),
           Ici("mov", rd="r1", ra="a1")]
    # Without liveness the checker cannot prove death: reject.
    diags = check_pruned_edges(ops, [("waw", 0, 1)])
    assert rules(diags) == {"pruned-waw"}
    # r1 dead at exit (and no later read): accept.
    assert_clean(check_pruned_edges(ops, [("waw", 0, 1)],
                                    live_out=set()))
    # r1 live out: the later write is observed — reject again.
    diags = check_pruned_edges(ops, [("waw", 0, 1)],
                               live_out={"r1"})
    assert rules(diags) == {"pruned-waw"}


def test_pruned_edge_shape_violations():
    ops = [Ici("mov", rd="r1", ra="a0"),
           Ici("add", rd="r2", ra="r1", rb="a0")]
    diags = check_pruned_edges(ops, [
        ("mem", 0, 1),            # not memory ops
        ("waw", 0, 1),            # no common destination
        ("raw", 0, 1),            # unknown kind
        ("mem", 1, 0),            # not i < j
        "nonsense",               # not a tuple
    ])
    assert rules(diags) == {"pruned-shape"}
    assert len(diags) == 5


def test_checker_keeps_memory_order_strict_without_prune_flag():
    # Same base, different offsets: a plain config must still flag the
    # reorder — the relaxation is tied to config.analysis_prune.
    ops = [Ici("st", ra="r1", rb="E", imm=0),
           Ici("st", ra="r2", rb="E", imm=1)]
    config = cfg()
    swapped = Schedule(ops, [1, 0], config)
    diags = check_schedule(ops, swapped, config)
    assert "mem-order" in rules(diags)
    relaxed = cfg(analysis_prune=True)
    swapped = Schedule(ops, [1, 0], relaxed)
    assert_clean(check_schedule(ops, swapped, relaxed))


def test_scheduler_prunes_verify_clean_end_to_end():
    # Schedule with the analysis oracle on and re-prove every claim.
    ops = [Ici("st", ra="r1", rb="E", imm=0),
           Ici("st", ra="r2", rb="E", imm=1),
           Ici("ld", rd="r3", ra="H", imm=0),
           Ici("jmp", label="next")]
    config = cfg(analysis_prune=True)
    pruned = []
    schedule = schedule_region(ops, config, pruned=pruned)
    assert pruned, "oracle found nothing to prune"
    assert_clean(check_schedule(ops, schedule, config))
    assert_clean(check_pruned_edges(ops, pruned))
