"""Memory-bank disambiguation (future-work dependence refinement)."""

from repro.intcode.ici import Ici
from repro.analysis.dependence import build_dag, memory_bank
from repro.compaction.machine_model import ideal
from repro.compaction.scheduler import schedule_region


def edges(dag):
    return {(p, i) for i in range(dag.n) for p, _ in dag.preds[i]}


def test_bank_classification():
    assert memory_bank(Ici("ld", rd="x", ra="H", imm=0)) == "heap"
    assert memory_bank(Ici("st", ra="x", rb="E", imm=1)) == "env"
    assert memory_bank(Ici("st", ra="x", rb="BT", imm=0)) == "choice"
    assert memory_bank(Ici("st", ra="x", rb="TR", imm=0)) == "trail"
    assert memory_bank(Ici("ld", rd="x", ra="PD", imm=0)) == "pdl"
    assert memory_bank(Ici("ld", rd="x", ra="r7", imm=0)) == "?"


def test_distinct_banks_do_not_conflict_when_enabled():
    ops = [Ici("st", ra="x", rb="TR", imm=0),
           Ici("ld", rd="y", ra="E", imm=0)]
    strict = build_dag(ops, [1, 1])
    assert (0, 1) in edges(strict)
    relaxed = build_dag(ops, [1, 1], bank_disambiguation=True)
    assert (0, 1) not in edges(relaxed)


def test_same_bank_still_conflicts():
    ops = [Ici("st", ra="x", rb="H", imm=0),
           Ici("ld", rd="y", ra="H", imm=1)]
    relaxed = build_dag(ops, [1, 1], bank_disambiguation=True)
    assert (0, 1) in edges(relaxed)


def test_unknown_pointer_conflicts_with_every_bank():
    ops = [Ici("st", ra="x", rb="H", imm=0),
           Ici("ld", rd="y", ra="r9", imm=0),   # dereferenced pointer
           Ici("st", ra="z", rb="E", imm=0)]
    relaxed = build_dag(ops, [1, 1, 1], bank_disambiguation=True)
    assert (0, 1) in edges(relaxed)   # heap store -> unknown load
    assert (1, 2) in edges(relaxed)   # unknown load -> env store


def test_unknown_store_fences_all_banks():
    ops = [Ici("st", ra="x", rb="r9", imm=0),
           Ici("ld", rd="y", ra="TR", imm=0)]
    relaxed = build_dag(ops, [1, 1], bank_disambiguation=True)
    assert (0, 1) in edges(relaxed)


def test_disabled_flag_keeps_classic_behaviour():
    ops = [Ici("st", ra="x", rb="TR", imm=0),
           Ici("st", ra="y", rb="E", imm=0)]
    strict = build_dag(ops, [1, 1])
    assert (0, 1) in edges(strict)


def test_banked_schedule_never_longer():
    ops = [Ici("st", ra="a", rb="TR", imm=0),
           Ici("st", ra="b", rb="E", imm=0),
           Ici("ld", rd="c", ra="H", imm=0),
           Ici("st", ra="d", rb="BT", imm=0)]
    shared = schedule_region(ops, ideal())
    banked_config = ideal("banked")
    banked_config.bank_disambiguation = True
    banked = schedule_region(ops, banked_config)
    assert banked.length <= shared.length
