"""Property-based reader/renderer round trips.

The contract under test: for any term ``t``,
``parse_term(term_to_string(t))`` is ``t`` again — and for any parsed
text, render → parse is the identity on the term.  Terms come from two
independent generators (hypothesis strategies and a seeded
``random.Random`` builder, so the suite is reproducible without
hypothesis's database), with the atom pool deliberately loaded with
quoting edge cases: the bare clause terminator ``.``, the block-comment
opener ``/*``, embedded quotes/backslashes, and every symbolic operator
in the table.  Operator-notation texts round-trip through the
canonical (functor-notation) rendering as well.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.reader import parse_term, ParseError, LexError
from repro.reader.operators import INFIX, PREFIX
from repro.terms import Atom, Int, Var, Struct, make_list, term_to_string

# Every one of these once rendered unquoted-but-unparseable (``.``,
# ``/*``) or stresses quoting/escaping.
EDGE_ATOMS = [
    ".", "/*", "/**", "*/", "=..", "it's", "a\\b", "''", " ",
    "hello world", "Upper", "_under", "[]", "{}", "!", ";", ",",
    "a.b", "%", "/*inner*/", "...", "-", "+", "**",
]

SAFE_ATOMS = ["a", "foo", "bar_baz", "q1"]

ALL_ATOMS = SAFE_ATOMS + EDGE_ATOMS + sorted(set(INFIX) | set(PREFIX))


def _equal(a, b):
    """Structural equality; variables compare by rendered name."""
    if isinstance(a, Atom):
        return isinstance(b, Atom) and a.name == b.name
    if isinstance(a, Int):
        return isinstance(b, Int) and a.value == b.value
    if isinstance(a, Var):
        return isinstance(b, Var) \
            and a.name.lstrip("_") == b.name.lstrip("_")
    if isinstance(a, Struct):
        return (isinstance(b, Struct) and a.name == b.name
                and len(a.args) == len(b.args)
                and all(_equal(x, y) for x, y in zip(a.args, b.args)))
    return False


def assert_roundtrip(term):
    text = term_to_string(term)
    back = parse_term(text)
    assert _equal(back, term), (
        "render/parse changed the term:\n  term:   %r\n  text:   %r\n"
        "  parsed: %r" % (term, text, back))
    # Rendering the reparse is a fixed point.
    assert term_to_string(back) == text


# --------------------------------------------------------------------------
# Hypothesis strategies.

_atoms = st.sampled_from(ALL_ATOMS)
_leaves = st.one_of(
    _atoms.map(Atom),
    st.integers(-10**9, 10**9).map(Int),
    st.sampled_from(["X", "Foo", "_1", "_x9"]).map(Var),
)


def _terms(depth):
    if depth == 0:
        return _leaves
    sub = _terms(depth - 1)
    return st.one_of(
        _leaves,
        st.lists(sub, min_size=0, max_size=3).map(make_list),
        st.tuples(_atoms, st.lists(sub, min_size=1, max_size=3)).map(
            lambda pair: Struct(pair[0], pair[1])),
    )


@given(_terms(3))
def test_hypothesis_roundtrip(term):
    assert_roundtrip(term)


@given(_atoms)
def test_every_atom_roundtrips_alone(name):
    assert_roundtrip(Atom(name))


@given(_atoms, _atoms)
def test_every_atom_roundtrips_as_functor(name, arg):
    assert_roundtrip(Struct(name, [Atom(arg), Int(0)]))


# --------------------------------------------------------------------------
# Seeded random generators (hypothesis-free reproducibility).

def _random_term(rng, depth):
    if depth == 0 or rng.random() < 0.3:
        kind = rng.randrange(3)
        if kind == 0:
            return Atom(rng.choice(ALL_ATOMS))
        if kind == 1:
            return Int(rng.randint(-10**6, 10**6))
        return Var(rng.choice(["X", "Y", "_t%d" % rng.randrange(4)]))
    if rng.random() < 0.3:
        items = [_random_term(rng, depth - 1)
                 for _ in range(rng.randrange(4))]
        return make_list(items)
    args = [_random_term(rng, depth - 1)
            for _ in range(1 + rng.randrange(3))]
    return Struct(rng.choice(ALL_ATOMS), args)


@pytest.mark.parametrize("seed", range(25))
def test_seeded_random_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(40):
        assert_roundtrip(_random_term(rng, rng.randrange(5)))


def _op_text(rng, depth):
    """A random operator-notation expression (fully parenthesised)."""
    if depth == 0:
        return rng.choice(["a", "b", "42", "-7", "X", "[a,b]", "f(x)"])
    roll = rng.random()
    if roll < 0.55:
        op = rng.choice(sorted(INFIX))
        return "(%s %s %s)" % (_op_text(rng, depth - 1), op,
                               _op_text(rng, depth - 1))
    if roll < 0.75:
        op = rng.choice(sorted(PREFIX))
        return "(%s (%s))" % (op, _op_text(rng, depth - 1))
    return _op_text(rng, depth - 1)


@pytest.mark.parametrize("seed", range(25))
def test_operator_text_roundtrips_through_canonical_form(seed):
    """parse → render (canonical functor form) → parse is the
    identity on operator-notation input."""
    rng = random.Random(1000 + seed)
    for _ in range(25):
        text = _op_text(rng, rng.randrange(1, 4))
        term = parse_term(text)
        assert_roundtrip(term)


# --------------------------------------------------------------------------
# The specific regressions that motivated the renderer fix.

def test_bare_dot_atom_renders_quoted():
    assert term_to_string(Atom(".")) == "'.'"
    assert_roundtrip(Atom("."))


def test_comment_opener_atom_renders_quoted():
    assert term_to_string(Atom("/*")) == "'/*'"
    assert_roundtrip(Atom("/*"))
    assert_roundtrip(Atom("/**"))


def test_dotted_symbolic_atoms_stay_unquoted():
    for name in ("=..", "..", "=.", "./*"):
        assert term_to_string(Atom(name)) == name
        assert_roundtrip(Atom(name))


def test_quote_and_backslash_escapes():
    assert term_to_string(Atom("it's")) == r"'it\'s'"
    assert_roundtrip(Atom("it's"))
    assert_roundtrip(Atom("a\\b"))


def test_operator_table_entries_roundtrip_everywhere():
    for name in sorted(set(INFIX) | set(PREFIX)):
        assert_roundtrip(Atom(name))
        assert_roundtrip(Struct(name, [Atom("a"), Atom("b")]))
        assert_roundtrip(make_list([Atom(name)]))


def test_malformed_text_still_raises():
    for text in ("f(", "')", "1 2", ""):
        with pytest.raises((ParseError, LexError)):
            parse_term(text)
