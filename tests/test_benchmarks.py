"""Benchmark suite: every program compiles, runs, and agrees with the
reference interpreter.  Heavy programs rely on the on-disk profile cache
so repeated test runs stay fast."""

import pytest

from tests.conftest import normalise_vars
from repro.benchmarks import (
    PROGRAMS, TABLE_BENCHMARKS, compile_benchmark, run_benchmark,
    interpret_benchmark, program_fingerprint)

FAST = ["conc30", "divide10", "log10", "ops8", "times10", "nreverse",
        "qsort", "serialise", "prover", "crypt", "mu", "query",
        "queens_8", "zebra"]
HEAVY = ["sendmore", "tak"]


def test_catalogue_is_the_paper_suite():
    assert len(PROGRAMS) == 16
    for name in ("conc30", "divide10", "log10", "mu", "nreverse", "ops8",
                 "prover", "qsort", "queens_8", "sendmore", "serialise",
                 "tak", "times10", "zebra", "crypt", "query"):
        assert name in PROGRAMS


def test_table_benchmarks_exclude_predictability_only_programs():
    assert "crypt" not in TABLE_BENCHMARKS
    assert "query" not in TABLE_BENCHMARKS
    assert len(TABLE_BENCHMARKS) == 14


def test_suite_catalogue_spans_all_program_families():
    """The resolvable catalogue = paper suite + extended + DCG
    workloads, without disturbing the paper's fixed tables."""
    from repro.benchmarks import resolve_program, suite_catalogue
    catalogue = suite_catalogue()
    for name in PROGRAMS:
        assert catalogue[name] is PROGRAMS[name]
    for name in ("fib", "hanoi", "primes"):
        assert name in catalogue
    for name in ("dcg_grammar", "dcg_json", "dcg_calc"):
        assert name in catalogue
        assert not catalogue[name].in_table1
        assert name not in TABLE_BENCHMARKS
        assert resolve_program(name) is catalogue[name]
    with pytest.raises(KeyError):
        resolve_program("no_such_benchmark")


@pytest.mark.parametrize("name", ("dcg_grammar", "dcg_json", "dcg_calc"))
def test_dcg_workload_resolves_through_suite(name):
    program = compile_benchmark(name)
    assert len(program) > 50
    result = run_benchmark(name)
    ok, output = interpret_benchmark(name)
    assert result.succeeded == ok
    assert normalise_vars(result.output) == normalise_vars(output)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_benchmark_compiles(name):
    program = compile_benchmark(name)
    assert len(program) > 50
    assert program_fingerprint(program)


@pytest.mark.parametrize("name", FAST)
def test_benchmark_matches_interpreter(name):
    result = run_benchmark(name)
    ok, output = interpret_benchmark(name)
    assert result.succeeded == ok
    assert normalise_vars(result.output) == normalise_vars(output)


@pytest.mark.parametrize("name", HEAVY)
def test_heavy_benchmark_succeeds(name):
    result = run_benchmark(name)
    assert result.succeeded
    assert result.output


def test_known_answers():
    assert run_benchmark("sendmore").output == "[9,5,6,7,1,0,8,2]\n"
    assert run_benchmark("crypt").output == "[3,4,8,2,8]\n"
    assert run_benchmark("queens_8").output.startswith("[")
    assert "proved" in run_benchmark("prover").output
    assert run_benchmark("zebra").output == "japanesenorwegian\n"
    qsorted = run_benchmark("qsort").output.strip("[]\n").split(",")
    values = [int(v) for v in qsorted]
    assert values == sorted(values) and len(values) == 50


def test_nreverse_reverses():
    output = run_benchmark("nreverse").output
    assert output.startswith("[30,29,28")


def test_profiles_are_plausible():
    result = run_benchmark("qsort")
    assert result.steps == sum(result.counts)
    assert all(t <= c for t, c in zip(result.taken, result.counts))
