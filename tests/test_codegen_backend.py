"""The codegen emulator backend: selection, bit-identical statistics,
profile-guided tiering, the content-addressed artefact cache, and the
reference fallback."""

import json
import os

import pytest

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import (
    CodegenEmulator, Emulator, EmulatorError, codegen_code, run_program)
from repro.emulator import codegen as codegen_mod
from repro.observability import tracing as observe


def compile_program(source, entry=("main", 0)):
    return translate_module(compile_source(source, entry))


HELLO = 'main :- write(hello), nl.'
LOOP = """
count(0).
count(N) :- N > 0, M is N - 1, count(M).
main :- count(200), write(done), nl.
"""
APPEND = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app([1,2,3], [4,5], R), write(R), nl.
"""


def assert_identical(program, **kwargs):
    reference = Emulator(program, **kwargs).run()
    compiled = CodegenEmulator(program, persist=False, **kwargs).run()
    assert compiled.status == reference.status
    assert compiled.steps == reference.steps
    assert compiled.output == reference.output
    assert compiled.counts == reference.counts
    assert compiled.taken == reference.taken
    return reference, compiled


# -- selection and identity ------------------------------------------------

def test_run_program_reports_codegen_backend():
    program = compile_program(HELLO)
    assert run_program(program, backend="codegen").backend == "codegen"


def test_identical_on_simple_program():
    reference, compiled = assert_identical(compile_program(HELLO))
    assert compiled.backend == "codegen"
    assert reference.backend == "reference"


def test_identical_on_looping_program():
    assert_identical(compile_program(LOOP))


def test_identical_on_list_program():
    assert_identical(compile_program(APPEND))


def test_identical_on_failing_query():
    program = compile_program("p(1).\nmain :- p(2), write(yes), nl.")
    reference, _compiled = assert_identical(program)
    assert reference.status == 1


def test_identical_across_repeated_runs():
    program = compile_program(LOOP)
    emulator = CodegenEmulator(program, persist=False)
    first = emulator.run()
    for _ in range(3):
        again = emulator.run()
        assert again.steps == first.steps
        assert again.output == first.output
        assert again.counts == first.counts
        assert again.taken == first.taken


def test_codegen_code_memoised_on_program():
    program = compile_program(HELLO)
    compiled = codegen_code(program, persist=False)
    assert codegen_code(program, persist=False) is compiled
    assert program._codegen is compiled


def test_generated_source_shape():
    compiled = codegen_code(compile_program(HELLO), persist=False)
    assert compiled.source.startswith("def _run(")
    assert "SPIN = range(limit + 1)" in compiled.source
    assert compiled.tier == 1
    assert compiled.from_cache is False


# -- profile-guided tier 2 -------------------------------------------------

def test_tier2_recompile_stays_identical(monkeypatch):
    monkeypatch.setattr(codegen_mod, "_TIER2_STEPS", 1)
    program = compile_program(LOOP)
    reference = Emulator(program).run()
    emulator = CodegenEmulator(program, persist=False)
    assert emulator.compiled.tier == 1
    first = emulator.run()
    # the first clean run's replayed profile seeds a recompile...
    assert emulator.compiled.tier == 2
    second = emulator.run()
    for result in (first, second):
        assert result.status == reference.status
        assert result.steps == reference.steps
        assert result.output == reference.output
        assert result.counts == reference.counts
        assert result.taken == reference.taken


def test_tier2_counter(monkeypatch):
    monkeypatch.setattr(codegen_mod, "_TIER2_STEPS", 1)
    with observe.activation(seed=0) as tracer:
        CodegenEmulator(compile_program(LOOP), persist=False).run()
    assert tracer.metrics.count("codegen.tier2.compiles") == 1


# -- the reference fallback ------------------------------------------------

def test_step_limit_falls_back_to_exact_fault():
    program = compile_program(LOOP)
    baseline = Emulator(program).run()
    limit = baseline.steps // 2
    with pytest.raises(EmulatorError) as reference_error:
        Emulator(program, max_steps=limit).run()
    with pytest.raises(EmulatorError) as codegen_error:
        CodegenEmulator(program, max_steps=limit, persist=False).run()
    assert str(codegen_error.value) == str(reference_error.value)


def test_tight_step_limit_still_exact():
    program = compile_program(HELLO)
    with pytest.raises(EmulatorError) as codegen_error:
        CodegenEmulator(program, max_steps=1, persist=False).run()
    with pytest.raises(EmulatorError) as reference_error:
        Emulator(program, max_steps=1).run()
    assert str(codegen_error.value) == str(reference_error.value)


def test_exact_step_limit_does_not_fault():
    program = compile_program(LOOP)
    baseline = Emulator(program).run()
    result = CodegenEmulator(program, max_steps=baseline.steps,
                             persist=False).run()
    assert result.steps == baseline.steps
    assert result.backend == "codegen"


def test_fallback_increments_counter():
    program = compile_program(LOOP)
    baseline = Emulator(program).run()
    with observe.activation(seed=0) as tracer:
        with pytest.raises(EmulatorError):
            CodegenEmulator(program, max_steps=baseline.steps // 2,
                            persist=False).run()
    assert tracer.metrics.count("emulator.codegen.fallbacks") == 1


# -- the content-addressed artefact cache ----------------------------------

def _codegen_artifacts(path):
    return sorted(name for name in os.listdir(path)
                  if name.startswith("codegen-"))


def test_artifact_cache_cold_then_warm(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    with observe.activation(seed=0) as tracer:
        cold = CodegenEmulator(compile_program(LOOP))
        first = cold.run()
    assert tracer.metrics.count("codegen.cache.misses") == 1
    # two writes: the tier-1 compile, then the tier-2 overwrite (LOOP
    # runs past _TIER2_STEPS, so the first clean run re-optimises)
    assert tracer.metrics.count("codegen.cache.writes") == 2
    assert cold.compiled.from_cache is False
    assert len(_codegen_artifacts(tmp_path)) == 1
    # a fresh Program (same fingerprint) is served from the cache
    with observe.activation(seed=0) as tracer:
        warm = CodegenEmulator(compile_program(LOOP))
        second = warm.run()
    assert tracer.metrics.count("codegen.cache.hits") == 1
    assert tracer.metrics.count("codegen.cache.misses") == 0
    assert warm.compiled.from_cache is True
    assert warm.compiled.tier == 2
    assert second.steps == first.steps
    assert second.counts == first.counts
    assert second.taken == first.taken


def test_persist_false_writes_no_artifact(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    CodegenEmulator(compile_program(LOOP), persist=False).run()
    assert _codegen_artifacts(tmp_path) == []


def test_corrupt_artifact_recompiles(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    CodegenEmulator(compile_program(LOOP)).run()
    [name] = _codegen_artifacts(tmp_path)
    with open(tmp_path / name, "w") as handle:
        handle.write("{not json")
    with observe.activation(seed=0) as tracer:
        emulator = CodegenEmulator(compile_program(LOOP))
        result = emulator.run()
    assert tracer.metrics.count("codegen.cache.misses") == 1
    assert emulator.compiled.from_cache is False
    assert result.backend == "codegen"
    assert_identical(compile_program(LOOP))


def test_wrong_schema_artifact_ignored(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    CodegenEmulator(compile_program(LOOP)).run()
    [name] = _codegen_artifacts(tmp_path)
    with open(tmp_path / name) as handle:
        payload = json.load(handle)
    payload["schema"] = -1
    with open(tmp_path / name, "w") as handle:
        json.dump(payload, handle)
    emulator = CodegenEmulator(compile_program(LOOP))
    assert emulator.compiled.from_cache is False


def test_tier2_overwrites_artifact(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setattr(codegen_mod, "_TIER2_STEPS", 1)
    CodegenEmulator(compile_program(LOOP)).run()
    [name] = _codegen_artifacts(tmp_path)
    with open(tmp_path / name) as handle:
        assert json.load(handle)["tier"] == 2
    # the next evaluation of this program loads the profiled build
    warm = CodegenEmulator(compile_program(LOOP))
    assert warm.compiled.from_cache is True
    assert warm.compiled.tier == 2
    assert_identical(compile_program(LOOP))
