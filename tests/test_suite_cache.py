"""Benchmark suite driver: fingerprinting and the on-disk profile cache."""

import json
import os


from repro.benchmarks.suite import (
    program_fingerprint, run_program_cached, cache_dir)
from repro.bam import compile_source
from repro.intcode import translate_module


def program_for(source):
    return translate_module(compile_source(source))


SOURCE_A = "main :- X = 1, write(X), nl."
SOURCE_B = "main :- X = 2, write(X), nl."


def test_fingerprint_stable_across_recompiles():
    assert program_fingerprint(program_for(SOURCE_A)) == \
        program_fingerprint(program_for(SOURCE_A))


def test_fingerprint_distinguishes_programs():
    assert program_fingerprint(program_for(SOURCE_A)) != \
        program_fingerprint(program_for(SOURCE_B))


def test_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    program = program_for(SOURCE_A)
    def entries():
        # The writer's advisory .lock file is bookkeeping, and the
        # codegen backend's compiled artefact (codegen-*.json) is its
        # own cache kind — neither is a profile entry.
        return sorted(p for p in tmp_path.iterdir()
                      if p.suffix == ".json"
                      and not p.name.startswith("codegen-"))

    first = run_program_cached(program, "t-")
    files = entries()
    assert len(files) == 1
    second = run_program_cached(program, "t-")
    assert second.output == first.output
    assert second.counts == first.counts
    assert entries() == files  # no new entries


def test_corrupt_cache_entry_recomputed(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    program = program_for(SOURCE_A)
    run_program_cached(program, "t-")
    path = next(p for p in tmp_path.iterdir()
                if p.name.startswith("t-"))
    path.write_text("{not json")
    result = run_program_cached(program, "t-")
    assert result.output == "1\n"
    assert json.load(open(path))["output"] == "1\n"


def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sub"))
    path = cache_dir()
    assert path == str(tmp_path / "sub")
    assert os.path.isdir(path)
