"""SYMBOL-3 64-bit instruction encoding: field packing and format rules."""

import pytest
from hypothesis import given, strategies as st

from repro.evaluation.encoding import (
    FormatA, FormatB, EncodingError, classify_cycle, N_REGISTERS)
from repro.intcode.ici import Ici


def test_format_a_roundtrip():
    instr = FormatA(mem_op="ld", mem_reg=3, mem_base=14, mem_off=-5,
                    alu_op="add", alu_rd=1, alu_ra=2, alu_rb=3, alu_tag=4,
                    move=True, move_rd=7, move_rs=8)
    word = instr.pack()
    assert word < (1 << 64)
    back = FormatA.unpack(word)
    for field in ("mem_op", "mem_reg", "mem_base", "mem_off", "alu_op",
                  "alu_rd", "alu_ra", "alu_rb", "alu_tag", "move",
                  "move_rd", "move_rs"):
        assert getattr(back, field) == getattr(instr, field), field


def test_format_b_roundtrip():
    instr = FormatB(ctrl_op="btag", ctrl_ra=5, ctrl_tag=3, priority=2,
                    imm=-123456, mem_op="st", mem_reg=1, mem_base=2,
                    mem_off=7)
    back = FormatB.unpack(instr.pack())
    for field in ("ctrl_op", "ctrl_ra", "ctrl_rb", "ctrl_tag", "priority",
                  "imm", "mem_op", "mem_reg", "mem_base", "mem_off"):
        assert getattr(back, field) == getattr(instr, field), field


def test_format_bit_distinguishes():
    a = FormatA().pack()
    b = FormatB().pack()
    assert a >> 63 == 0
    assert b >> 63 == 1
    with pytest.raises(EncodingError):
        FormatA.unpack(b)
    with pytest.raises(EncodingError):
        FormatB.unpack(a)


def test_register_bank_limit_enforced():
    with pytest.raises(EncodingError):
        FormatA(alu_op="add", alu_rd=N_REGISTERS).pack()


def test_immediate_width_enforced():
    FormatB(imm=(1 << 27) - 1).pack()
    with pytest.raises(EncodingError):
        FormatB(imm=1 << 27).pack()
    FormatB(imm=-(1 << 27)).pack()
    with pytest.raises(EncodingError):
        FormatB(imm=-(1 << 27) - 1).pack()


def test_offset_width_enforced():
    with pytest.raises(EncodingError):
        FormatA(mem_op="ld", mem_off=200).pack()
    with pytest.raises(EncodingError):
        FormatB(mem_op="ld", mem_off=20).pack()


@given(st.integers(0, 15), st.integers(0, 15),
       st.integers(-128, 127), st.integers(0, 7))
def test_format_a_fields_never_interfere(rd, rs, off, tag):
    instr = FormatA(mem_op="st", mem_reg=rd, mem_base=rs, mem_off=off,
                    alu_op="lea", alu_rd=rs, alu_ra=rd, alu_tag=tag)
    back = FormatA.unpack(instr.pack())
    assert back.mem_off == off
    assert back.alu_tag == tag
    assert back.mem_reg == rd and back.mem_base == rs


@given(st.integers(-(1 << 27), (1 << 27) - 1), st.integers(0, 7))
def test_format_b_immediate_exact(imm, priority):
    back = FormatB.unpack(FormatB(ctrl_op="jmp", imm=imm,
                                  priority=priority).pack())
    assert back.imm == imm and back.priority == priority


# -- cycle classification ---------------------------------------------------


def test_classify_direct_cycle():
    ops = [Ici("ld", rd="r1", ra="r2", imm=0),
           Ici("add", rd="r3", ra="r1", rb="r2"),
           Ici("mov", rd="r4", ra="r3")]
    kind = classify_cycle(ops)
    assert kind[0] == "A"


def test_classify_control_cycle():
    ops = [Ici("btag", ra="r1", tag=2, label="L"),
           Ici("st", ra="r1", rb="r2", imm=0)]
    kind = classify_cycle(ops)
    assert kind[0] == "B"


def test_immediate_move_uses_format_b():
    kind = classify_cycle([Ici("ldi", rd="r1", imm=7)])
    assert kind[0] == "B"


def test_control_excludes_alu():
    ops = [Ici("btag", ra="r1", tag=2, label="L"),
           Ici("add", rd="r3", ra="r1", rb="r2")]
    with pytest.raises(EncodingError):
        classify_cycle(ops)


def test_two_ops_of_same_class_rejected():
    ops = [Ici("add", rd="r1", ra="r2", rb="r3"),
           Ici("sub", rd="r4", ra="r5", rb="r6")]
    with pytest.raises(EncodingError):
        classify_cycle(ops)


def test_control_plus_immediate_move_conflict():
    ops = [Ici("btag", ra="r1", tag=2, label="L"),
           Ici("ldi", rd="r2", imm=3)]
    with pytest.raises(EncodingError):
        classify_cycle(ops)
