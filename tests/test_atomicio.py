"""Edge cases of crash-safe publication and the advisory file lock.

Covers the failure windows the happy-path suites never hit: an
``fsync`` that fails mid-publish (the error must surface and the
destination must stay untouched, with no stray temp file), re-entrant
acquisition of one :class:`FileLock` object (must deepen, not
deadlock), and :func:`os.replace` over a pre-existing read-only
target (atomic publish must still win).
"""

import json
import os
import stat

import pytest

from repro.atomicio import (
    FileLock, LockTimeout, atomic_write_json, atomic_write_text)


# --------------------------------------------------------------------------
# fsync failure.

def _no_tmp_files(directory):
    return [name for name in os.listdir(directory)
            if name.endswith(".tmp")] == []


def test_fsync_failure_surfaces_and_leaves_no_partial_file(
        tmp_path, monkeypatch):
    target = tmp_path / "artefact.json"
    target.write_text("original")

    def failing_fsync(fd):
        raise OSError(5, "Input/output error")

    monkeypatch.setattr(os, "fsync", failing_fsync)
    with pytest.raises(OSError, match="Input/output error"):
        atomic_write_text(str(target), "replacement")
    # The destination is untouched and the temp file was cleaned up.
    assert target.read_text() == "original"
    assert _no_tmp_files(str(tmp_path))


def test_fsync_failure_on_fresh_target_leaves_nothing(tmp_path,
                                                      monkeypatch):
    monkeypatch.setattr(
        os, "fsync",
        lambda fd: (_ for _ in ()).throw(OSError(5, "I/O error")))
    with pytest.raises(OSError):
        atomic_write_json(str(tmp_path / "new.json"), {"a": 1})
    assert os.listdir(str(tmp_path)) == []


def test_fsync_can_be_waived(tmp_path, monkeypatch):
    monkeypatch.setattr(
        os, "fsync",
        lambda fd: (_ for _ in ()).throw(OSError(5, "I/O error")))
    path = atomic_write_text(str(tmp_path / "out.txt"), "data",
                             fsync=False)
    assert open(path).read() == "data"


# --------------------------------------------------------------------------
# FileLock re-entrancy.

def test_filelock_reacquire_same_object_does_not_deadlock(tmp_path):
    lock = FileLock(str(tmp_path / ".lock"), timeout=2.0)
    with lock:
        with lock:              # would flock a second fd and block
            assert lock.held
        # Inner release keeps the OS lock: an independent object still
        # cannot acquire it.
        assert lock.held
        other = FileLock(str(tmp_path / ".lock"), timeout=0.2)
        with pytest.raises(LockTimeout):
            other.acquire()
    assert not lock.held
    # Outermost release really released: a fresh object acquires.
    with FileLock(str(tmp_path / ".lock"), timeout=2.0) as fresh:
        assert fresh.held


def test_filelock_three_deep_releases_in_order(tmp_path):
    lock = FileLock(str(tmp_path / ".lock"))
    lock.acquire()
    lock.acquire()
    lock.acquire()
    lock.release()
    lock.release()
    assert lock.held
    lock.release()
    assert not lock.held
    # Extra releases are harmless no-ops.
    lock.release()
    assert not lock.held


def test_distinct_objects_still_exclude_each_other(tmp_path):
    path = str(tmp_path / ".lock")
    with FileLock(path, timeout=2.0):
        with pytest.raises(LockTimeout):
            FileLock(path, timeout=0.2).acquire()


# --------------------------------------------------------------------------
# LockTimeout: a failed acquire must leave the loser fully usable.

def test_lock_timeout_names_path_and_is_an_oserror(tmp_path):
    path = str(tmp_path / ".lock")
    with FileLock(path):
        loser = FileLock(path, timeout=0.1)
        with pytest.raises(LockTimeout) as caught:
            loser.acquire()
        assert path in str(caught.value)
        assert isinstance(caught.value, OSError)


def test_failed_acquire_leaves_depth_and_state_clean(tmp_path):
    path = str(tmp_path / ".lock")
    loser = FileLock(path, timeout=0.1)
    with FileLock(path):
        with pytest.raises(LockTimeout):
            loser.acquire()
        assert not loser.held
        assert loser._depth == 0
        assert loser._handle is None
    # The same object acquires cleanly once the holder releases, and
    # re-entrancy still counts from zero.
    with loser:
        with loser:
            assert loser._depth == 2
    assert not loser.held


def test_lock_file_is_reusable_after_timeout(tmp_path):
    path = str(tmp_path / ".lock")
    holder = FileLock(path)
    holder.acquire()
    with pytest.raises(LockTimeout):
        FileLock(path, timeout=0.1).acquire()
    holder.release()
    # The lock file was not deleted or wedged by the failed attempt.
    assert os.path.exists(path)
    with FileLock(path, timeout=2.0) as fresh:
        assert fresh.held


# --------------------------------------------------------------------------
# try_acquire: the non-blocking path used by the cache store's
# bounded put-lock wait.

def test_try_acquire_succeeds_uncontended_and_deepens_when_held(
        tmp_path):
    lock = FileLock(str(tmp_path / ".lock"))
    assert lock.try_acquire()
    assert lock.held
    assert lock.try_acquire()               # re-entrant deepen
    assert lock._depth == 2
    lock.release()
    assert lock.held
    lock.release()
    assert not lock.held


def test_try_acquire_contended_returns_false_without_waiting(
        tmp_path):
    import time
    path = str(tmp_path / ".lock")
    with FileLock(path):
        loser = FileLock(path)
        started = time.monotonic()
        assert not loser.try_acquire()
        assert time.monotonic() - started < 1.0
        assert not loser.held
        assert loser._depth == 0 and loser._handle is None
    # After the holder releases, the refused object succeeds.
    assert loser.try_acquire()
    loser.release()


# --------------------------------------------------------------------------
# Publishing over a read-only target.

def test_replace_over_readonly_target(tmp_path):
    target = tmp_path / "locked.json"
    target.write_text(json.dumps({"version": 1}))
    os.chmod(str(target), 0o444)
    assert not (os.stat(str(target)).st_mode & stat.S_IWUSR)
    atomic_write_json(str(target), {"version": 2})
    assert json.load(open(str(target))) == {"version": 2}
    assert _no_tmp_files(str(tmp_path))
    # The publish replaced the inode, so the read-only mode of the old
    # file does not survive; the new artefact is writable by owner.
    assert os.stat(str(target)).st_mode & stat.S_IWUSR
