"""Clause compiler: variable classification, environments, cut, LCO."""

from repro.interp import Database
from repro.bam.normalize import Normalizer
from repro.bam.clauses import ClauseCompiler
from repro.bam import instructions as bam
from repro.bam.descriptors import DVar, DList


def compile_one(text, indicator=None):
    db = Database()
    db.consult(text)
    norm = Normalizer().add_database(db)
    indicator = indicator or norm.order[0]
    head, goals = norm.predicates[indicator][0]
    compiler = ClauseCompiler(head, goals)
    return compiler, compiler.compile()


def instr_types(instrs):
    return [type(i).__name__ for i in instrs]


def test_fact_is_gets_then_proceed():
    _, instrs = compile_one("p(a, X).")
    assert instr_types(instrs) == ["Get", "Get", "Proceed"]


def test_single_chunk_vars_are_temporaries():
    compiler, _ = compile_one("p(X, Y) :- X = Y.")
    assert compiler.nslots == 0
    assert not compiler.needs_env


def test_var_across_two_calls_is_permanent():
    compiler, _ = compile_one("p(X) :- q(X), r(X).")
    assert compiler.nslots == 1
    assert compiler.needs_env


def test_var_in_head_and_last_call_is_temporary():
    compiler, _ = compile_one("p(X) :- q(X).")
    assert compiler.nslots == 0
    assert not compiler.needs_env


def test_env_needed_when_goal_follows_call():
    compiler, _ = compile_one("p :- q, r.")
    assert compiler.needs_env


def test_inline_goals_do_not_split_chunks():
    # X occurs in the head and after an arithmetic test: still chunk 0.
    compiler, _ = compile_one("p(X, Y) :- X < 3, Y = X.")
    assert compiler.nslots == 0


def test_last_call_optimisation_emits_execute():
    _, instrs = compile_one("p(X) :- q, r(X).")
    assert isinstance(instrs[-1], bam.Execute)
    assert isinstance(instrs[-2], bam.Deallocate)


def test_non_call_ending_emits_proceed():
    _, instrs = compile_one("p(X) :- q(X), X = a.")
    assert isinstance(instrs[-1], bam.Proceed)
    assert any(isinstance(i, bam.Deallocate) for i in instrs)


def test_cut_in_first_chunk_uses_register():
    _, instrs = compile_one("p(X) :- !, q(X).")
    cuts = [i for i in instrs if isinstance(i, bam.Cut)]
    assert cuts and cuts[0].slot is None
    assert not any(isinstance(i, bam.StoreCutBarrier) for i in instrs)


def test_cut_after_call_gets_environment_slot():
    compiler, instrs = compile_one("p :- q, !, r.")
    cuts = [i for i in instrs if isinstance(i, bam.Cut)]
    assert cuts[0].slot is not None
    assert any(isinstance(i, bam.StoreCutBarrier) for i in instrs)
    assert compiler.nslots == 1  # the cut slot itself


def test_first_occurrence_marking_left_to_right():
    _, instrs = compile_one("p(X, X).")
    first_get, second_get = instrs[0], instrs[1]
    assert first_get.desc.first
    assert not second_get.desc.first


def test_occurrence_marking_inside_structures():
    _, instrs = compile_one("p([X|X]).")
    desc = instrs[0].desc
    assert isinstance(desc, DList)
    assert desc.head.first and not desc.tail.first


def test_fail_truncates_clause():
    _, instrs = compile_one("p :- fail, q.")
    assert isinstance(instrs[-1], bam.FailInstr)


def test_arith_compiles_to_arith_instr():
    _, instrs = compile_one("p(X, Y) :- Y is X * 2 + 1.")
    ariths = [i for i in instrs if isinstance(i, bam.Arith)]
    assert len(ariths) == 1
    assert isinstance(ariths[0].dst, DVar)


def test_escape_for_write():
    _, instrs = compile_one("p(X) :- write(X), nl.")
    escapes = [i for i in instrs if isinstance(i, bam.Escape)]
    assert [e.service for e in escapes] == ["write", "nl"]


def test_call_arguments_put_in_order():
    _, instrs = compile_one("p(X, Y) :- q(Y, X, 1).")
    puts = [i for i in instrs if isinstance(i, bam.Put)]
    assert [p.reg for p in puts] == ["a0", "a1", "a2"]


def test_permanent_slots_count_multiple():
    compiler, _ = compile_one("p(X, Y, Z) :- q(X), r(Y), s(Z).")
    # X is chunk-0 only; Y and Z survive calls.
    assert compiler.nslots == 2
