"""ICI well-formedness lint: operand shapes, label resolution, and the
definite-assignment dataflow, exercised on hand-built programs and on
seeded corruptions of compiled ones."""

from repro.analysis import lint_program, format_diagnostics
from repro.analysis.lint import check_operands
from repro.bam import compile_source
from repro.intcode import translate_module, optimize_program
from repro.intcode.ici import Ici
from repro.intcode.program import Program

SOURCE = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app([1,2], [3], X), write(X), nl.
"""


def prog(instructions, labels=None, entry="$start"):
    labels = dict(labels or {})
    labels.setdefault(entry, 0)
    return Program(list(instructions), labels, None, entry=entry)


def rules(diagnostics):
    return {d.rule for d in diagnostics}


def assert_clean(diagnostics):
    assert diagnostics == [], format_diagnostics(diagnostics)


# -- operand shapes ----------------------------------------------------------

def test_well_formed_instructions_pass():
    for instruction in (
            Ici("ld", rd="r1", ra="H", imm=2),
            Ici("st", ra="r1", rb="E"),
            Ici("add", rd="r2", ra="r1", rb="a0"),
            Ici("lea", rd="r3", ra="H", imm=1, tag=2),
            Ici("ldi", rd="r4", imm=9),
            Ici("ldi", rd="r4", label="L"),
            Ici("btag", ra="a0", tag=0, label="L"),
            Ici("esc", esc="write", ra="a0"),
            Ici("halt")):
        assert_clean(check_operands(instruction))


def test_missing_required_operand():
    diags = check_operands(Ici("add", rd="r1", ra="r2"))
    assert rules(diags) == {"operand-shape"}
    assert "missing rb" in diags[0].message


def test_unexpected_operand():
    diags = check_operands(Ici("mov", rd="r1", ra="r2", imm=3))
    assert rules(diags) == {"operand-shape"}
    assert "unexpected imm" in diags[0].message


def test_tag_outside_field():
    diags = check_operands(Ici("btag", ra="a0", tag=9, label="L"))
    assert rules(diags) == {"operand-shape"}
    assert "3-bit" in diags[0].message


def test_unknown_escape_service():
    diags = check_operands(Ici("esc", esc="reboot", ra="a0"))
    assert rules(diags) == {"operand-shape"}


def test_ldi_needs_exactly_one_payload():
    both = check_operands(Ici("ldi", rd="r1", imm=1, label="L"))
    neither = check_operands(Ici("ldi", rd="r1"))
    assert rules(both) == {"operand-shape"}
    assert any("missing" in d.message or "neither" in d.message
               for d in neither)


def test_register_field_must_be_a_name():
    diags = check_operands(Ici("mov", rd=7, ra="r1"))
    assert rules(diags) == {"operand-shape"}


def test_unknown_opcode_is_reported():
    instruction = Ici("add", rd="r1", ra="r2", rb="r3")
    instruction.op = "frob"
    assert rules(check_operands(instruction)) == {"unknown-opcode"}


# -- labels and program shape ------------------------------------------------

def test_clean_program_lints_clean():
    assert_clean(lint_program(prog([
        Ici("ldi", rd="r1", imm=5),
        Ici("add", rd="r2", ra="r1", rb="a0"),
        Ici("halt"),
    ])))


def test_unresolved_branch_label():
    diags = lint_program(prog([
        Ici("btag", ra="a0", tag=0, label="nowhere"),
        Ici("halt"),
    ]))
    assert "label-unresolved" in rules(diags)


def test_label_out_of_range():
    diags = lint_program(prog([Ici("halt")], labels={"bogus": 99}))
    assert "label-out-of-range" in rules(diags)


def test_entry_label_must_exist():
    program = Program([Ici("halt")], {}, None, entry="$start")
    assert "entry-missing" in rules(lint_program(program))


def test_program_must_not_fall_off_the_end():
    diags = lint_program(prog([
        Ici("ldi", rd="r1", imm=1),
        Ici("add", rd="r2", ra="r1", rb="a0"),
    ]))
    assert "block-terminator" in rules(diags)


# -- definite assignment -----------------------------------------------------

def test_use_of_never_written_register():
    diags = lint_program(prog([
        Ici("add", rd="r2", ra="r9", rb="a0"),
        Ici("halt"),
    ]))
    assert rules(diags) == {"use-before-def"}
    assert "r9" in diags[0].message


def test_abi_registers_are_defined_at_entry():
    assert_clean(lint_program(prog([
        Ici("add", rd="r1", ra="a0", rb="a1"),
        Ici("st", ra="r1", rb="H"),
        Ici("halt"),
    ])))


def test_write_on_one_path_only_is_flagged():
    # Taken path (pc 0 -> 2) skips the ldi, so r1 is not written on
    # every path reaching the add.
    diags = lint_program(prog([
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("ldi", rd="r1", imm=1),
        Ici("add", rd="r2", ra="r1", rb="a0"),
        Ici("halt"),
    ], labels={"L": 2}))
    assert rules(diags) == {"use-before-def"}
    assert diags[0].pos == 2


def test_write_on_both_paths_is_clean():
    assert_clean(lint_program(prog([
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("ldi", rd="r1", imm=1),
        Ici("jmp", label="M"),
        Ici("ldi", rd="r1", imm=2),
        Ici("add", rd="r2", ra="r1", rb="a0"),
        Ici("halt"),
    ], labels={"L": 3, "M": 4})))


def test_temporaries_survive_calls():
    # Runtime routines preserve caller registers; r5 written before the
    # call must still count as defined at the return point.
    assert_clean(lint_program(prog([
        Ici("ldi", rd="r5", imm=1),
        Ici("call", rd="RL", label="fn"),
        Ici("add", rd="r6", ra="r5", rb="a0"),
        Ici("halt"),
        Ici("jmpr", ra="RL"),
    ], labels={"fn": 4})))


def test_indirect_entries_assume_only_the_abi():
    # The block at "fn" is reachable via a materialised code address, so
    # it may only rely on the ABI contract — not on r5.
    diags = lint_program(prog([
        Ici("ldi", rd="r5", imm=1),
        Ici("ldi", rd="r7", label="fn"),
        Ici("jmpr", ra="r7"),
        Ici("add", rd="r6", ra="r5", rb="a0"),
        Ici("jmpr", ra="RL"),
    ], labels={"fn": 3}))
    assert rules(diags) == {"use-before-def"}
    assert "r5" in diags[0].message


def test_unreachable_def_does_not_suppress_reachable_read():
    # pc 1 writes r1 but can never execute (the entry jumps over it);
    # the read at M must still be flagged.
    diags = lint_program(prog([
        Ici("jmp", label="M"),
        Ici("ldi", rd="r1", imm=1),
        Ici("add", rd="r2", ra="r1", rb="a0"),
        Ici("halt"),
    ], labels={"M": 2}))
    assert rules(diags) == {"use-before-def"}
    assert diags[0].pos == 2 and "r1" in diags[0].message


def test_reads_inside_unreachable_code_stay_silent():
    # Dead code can never execute, so its reads are not diagnosed.
    assert_clean(lint_program(prog([
        Ici("halt"),
        Ici("add", rd="r2", ra="r9", rb="a0"),
        Ici("halt"),
    ])))


def test_reachable_self_loop_converges_clean():
    # A block that is its own predecessor must reach the fixpoint and
    # keep the definition flowing in from outside the loop.
    assert_clean(lint_program(prog([
        Ici("ldi", rd="r1", imm=0),
        Ici("add", rd="r1", ra="r1", rb="a0"),
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("halt"),
    ], labels={"L": 1})))


def test_self_loop_does_not_launder_its_own_later_def():
    # The loop body writes r9 *after* reading it; the back edge must not
    # make that write count for the first iteration.
    diags = lint_program(prog([
        Ici("ldi", rd="r1", imm=1),
        Ici("add", rd="r2", ra="r9", rb="a0"),
        Ici("ldi", rd="r9", imm=5),
        Ici("btag", ra="a0", tag=0, label="L"),
        Ici("halt"),
    ], labels={"L": 1}))
    assert rules(diags) == {"use-before-def"}
    assert diags[0].pos == 1 and "r9" in diags[0].message


def test_unreachable_self_loop_feeding_reachable_block_still_flags():
    # The dead loop at U writes r9 and falls through into M; since U can
    # never run, M's read of r9 is still a diagnostic.
    diags = lint_program(prog([
        Ici("jmp", label="M"),
        Ici("ldi", rd="r9", imm=1),
        Ici("btag", ra="a0", tag=0, label="U"),
        Ici("add", rd="r2", ra="r9", rb="a0"),
        Ici("halt"),
    ], labels={"M": 3, "U": 1}))
    assert rules(diags) == {"use-before-def"}
    assert diags[0].pos == 3 and "r9" in diags[0].message


def test_dataflow_skipped_when_shape_is_broken():
    diags = lint_program(prog([
        Ici("btag", ra="a0", tag=0, label="nowhere"),
        Ici("add", rd="r1", ra="r9", rb="a0"),
        Ici("halt"),
    ]))
    assert "label-unresolved" in rules(diags)
    assert "use-before-def" not in rules(diags)


# -- compiled programs -------------------------------------------------------

def test_compiled_program_lints_clean_pre_and_post_optimize():
    program = translate_module(compile_source(SOURCE))
    assert_clean(lint_program(program))
    optimized, _ = optimize_program(program)
    assert_clean(lint_program(optimized, stage="optimize"))


def test_stage_is_carried_into_diagnostics():
    diags = lint_program(prog([
        Ici("add", rd="r2", ra="r9", rb="a0"),
        Ici("halt"),
    ]), stage="optimize")
    assert diags[0].stage == "optimize"
    assert diags[0].format().startswith("optimize:use-before-def")
