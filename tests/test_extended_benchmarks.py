"""Extended benchmark set: known answers + interpreter equivalence +
full-pipeline sanity."""

import pytest

from tests.conftest import normalise_vars
from repro.benchmarks.extended import EXTENDED_PROGRAMS, EXPECTED_OUTPUT
from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.interp import Engine
from repro.evaluation.pipeline import superblock_regions, machine_cycles, \
    basic_block_regions
from repro.compaction import sequential, vliw


def compiled_result(name):
    program = translate_module(
        compile_source(EXTENDED_PROGRAMS[name].source))
    return program, run_program(program, max_steps=50_000_000)


@pytest.mark.parametrize("name", sorted(EXTENDED_PROGRAMS))
def test_known_answer(name):
    _, result = compiled_result(name)
    assert result.succeeded
    assert result.output == EXPECTED_OUTPUT[name]


@pytest.mark.parametrize("name", sorted(EXTENDED_PROGRAMS))
def test_matches_interpreter(name):
    engine = Engine()
    engine.consult(EXTENDED_PROGRAMS[name].source)
    ok = engine.run_query("main")
    _, result = compiled_result(name)
    assert result.succeeded == ok
    assert normalise_vars(result.output) == \
        normalise_vars(engine.output_text())


@pytest.mark.parametrize("name", ["fib", "btree", "primes"])
def test_pipeline_speedup_in_expected_band(name):
    program, result = compiled_result(name)
    seq = machine_cycles(basic_block_regions(program, result),
                         sequential())
    traced = machine_cycles(superblock_regions(program, result), vliw(3))
    speedup = seq / traced
    assert 1.2 < speedup < 4.5, speedup
