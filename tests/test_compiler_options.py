"""Compiler feature switches: the Warren-style baseline stays correct."""

import pytest

from tests.conftest import interpret, normalise_vars
from repro.bam import compile_source, CompilerOptions
from repro.bam import instructions as bam
from repro.bam.normalize import Normalizer
from repro.bam.predicates import PredicateCompiler
from repro.interp import Database
from repro.terms import SymbolTable
from repro.intcode import translate_module
from repro.emulator import run_program

PROGRAMS = {
    "append-enum": """
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        main :- app(A, B, [1,2,3]), write(A-B), nl, fail.
        main :- write(done), nl.
    """,
    "cut-commit": """
        max(X, Y, X) :- X >= Y, !.
        max(_, Y, Y).
        main :- max(3, 8, M), max(9, 1, N), write(M-N), nl.
    """,
    "naf-search": """
        mem(X, [X|_]).
        mem(X, [_|T]) :- mem(X, T).
        pick(1). pick(2). pick(3). pick(4).
        main :- pick(A), \\+ mem(A, [2,4]), write(A), fail.
        main :- nl.
    """,
    "deep-env": """
        step(X, Y) :- Y is X + 1.
        walk(X, X, 0).
        walk(X, Z, N) :- N > 0, step(X, Y), M is N - 1, walk(Y, Z, M).
        main :- walk(0, Z, 50), write(Z), nl.
    """,
}

OPTION_SETS = {
    "full": CompilerOptions(),
    "no-indexing": CompilerOptions(indexing=False),
    "no-lco": CompilerOptions(lco=False),
    "warren": CompilerOptions(indexing=False, lco=False),
}


@pytest.mark.parametrize("program", sorted(PROGRAMS))
@pytest.mark.parametrize("options", sorted(OPTION_SETS))
def test_option_sets_preserve_semantics(program, options):
    source = PROGRAMS[program]
    ok, expected = interpret(source)
    compiled = translate_module(compile_source(
        source, options=OPTION_SETS[options]))
    result = run_program(compiled, max_steps=10_000_000)
    assert result.succeeded == ok
    assert normalise_vars(result.output) == normalise_vars(expected)


def _compile_pred(text, options, indicator=None):
    db = Database()
    db.consult(text)
    norm = Normalizer().add_database(db)
    indicator = indicator or norm.order[0]
    name, arity = indicator
    return PredicateCompiler(name, arity, norm.predicates[indicator],
                             SymbolTable(), options).compile()


def test_no_indexing_emits_plain_chain():
    instrs = _compile_pred("p(a). p(b).",
                           CompilerOptions(indexing=False))
    assert not [i for i in instrs if isinstance(i, bam.SwitchOnTag)]
    assert len([i for i in instrs if isinstance(i, bam.Try)]) == 1


def test_no_lco_emits_call_and_proceed():
    instrs = _compile_pred("p(X) :- q(X). q(_).",
                           CompilerOptions(lco=False))
    assert not [i for i in instrs if isinstance(i, bam.Execute)]
    calls = [i for i in instrs if isinstance(i, bam.Call)]
    assert calls and calls[0].name == "q"
    assert [i for i in instrs if isinstance(i, bam.Allocate)]


def test_warren_baseline_runs_more_cycles():
    source = PROGRAMS["append-enum"]
    fast = run_program(translate_module(compile_source(source)))
    slow = run_program(translate_module(compile_source(
        source, options=OPTION_SETS["warren"])))
    assert slow.steps > fast.steps
    assert slow.output == fast.output


def test_deep_recursion_without_lco_uses_bounded_env_stack():
    # 500-deep recursion without tail calls: environments must not
    # corrupt each other (the monotone-watermark regression).
    source = """
        count(0) :- !.
        count(N) :- M is N - 1, count(M).
        main :- count(500), write(ok), nl.
    """
    compiled = translate_module(compile_source(
        source, options=CompilerOptions(lco=False)))
    result = run_program(compiled, max_steps=10_000_000)
    assert result.succeeded and result.output == "ok\n"
