"""Trace picking and superblock transformation.

The central property: the transformed program is semantically identical —
same halt status, same output — on a battery of programs with heavy
backtracking, and its regions partition the code with single entries.
"""

import pytest

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import Emulator
from repro.analysis.cfg import Cfg
from repro.compaction.trace import pick_traces, edge_counts
from repro.compaction.transform import form_superblocks

PROGRAMS = {
    "append": """
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        main :- app([1,2,3], [4], X), write(X), nl.
    """,
    "split-backtrack": """
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        main :- app(X, [3|_], [1,2,3,4]), write(X), nl.
    """,
    "failure": """
        p(1). p(2).
        main :- p(3), write(bad), nl.
    """,
    "cut": """
        q(1). q(2). q(3).
        first(X) :- q(X), !.
        main :- first(X), write(X), nl.
    """,
    "nondeterminism": """
        sel(X, [X|T], T).
        sel(X, [H|T], [H|R]) :- sel(X, T, R).
        main :- sel(X, [a,b,c], R), write(X-R), nl, fail.
        main :- write(done), nl.
    """,
    "arith-ite": """
        f(X, Y) :- (X > 10 -> Y is X - 10 ; Y is 10 - X).
        main :- f(3, A), f(30, B), write(A-B), nl.
    """,
}


def transformed(source, budget=48):
    program = translate_module(compile_source(source))
    result = Emulator(program).run()
    return program, result, form_superblocks(program, result.counts,
                                             result.taken, budget)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_transform_preserves_semantics(name):
    program, result, transform = transformed(PROGRAMS[name])
    new_result = Emulator(transform.program).run()
    assert new_result.status == result.status
    assert new_result.output == result.output


@pytest.mark.parametrize("budget", [0, 8, 48, 200])
def test_transform_preserves_semantics_across_budgets(budget):
    program, result, transform = transformed(
        PROGRAMS["split-backtrack"], budget)
    new_result = Emulator(transform.program).run()
    assert (new_result.status, new_result.output) == (result.status,
                                                      result.output)


def test_regions_partition_the_new_program():
    _, _, transform = transformed(PROGRAMS["append"])
    covered = []
    for region in transform.regions:
        covered.extend(range(region.start, region.end))
    assert sorted(covered) == list(range(len(transform.program)))


def test_regions_have_single_entry():
    """No branch/jump may target the interior of a region."""
    _, _, transform = transformed(PROGRAMS["nondeterminism"])
    program = transform.program
    heads = {region.start for region in transform.regions}
    interior_targets = set()
    for instruction in program.instructions:
        if instruction.label is not None and instruction.op != "call":
            target = program.labels[instruction.label]
            if target not in heads:
                interior_targets.add(target)
    # ldi-code labels point at region heads too (indirect entries).
    assert not interior_targets


def test_zero_count_blocks_become_singleton_regions():
    _, _, transform = transformed(PROGRAMS["failure"])
    new_result = Emulator(transform.program).run()
    assert new_result.status == 1


def test_code_growth_reported():
    _, _, transform = transformed(PROGRAMS["split-backtrack"])
    assert transform.code_growth >= 1.0
    assert transform.duplicated_ops >= 0


def test_budget_zero_means_no_duplication():
    _, _, transform = transformed(PROGRAMS["split-backtrack"], budget=0)
    assert transform.duplicated_ops == 0


def test_traces_follow_hot_edges():
    program = translate_module(compile_source(PROGRAMS["append"]))
    result = Emulator(program).run()
    cfg = Cfg(program)
    traces = pick_traces(cfg, result.counts, result.taken)
    heads = {trace.head.start for trace in traces}
    assert program.entry_pc in {b.start for t in traces for b in t.blocks}
    # Every block is in exactly one trace.
    assigned = [b.start for t in traces for b in t.blocks]
    assert len(assigned) == len(set(assigned)) == len(cfg.blocks)
    # At least one trace is longer than a single block (the hot path).
    assert any(len(t) > 1 for t in traces)


def test_indirect_entries_are_trace_heads():
    program = translate_module(compile_source(PROGRAMS["append"]))
    result = Emulator(program).run()
    cfg = Cfg(program)
    traces = pick_traces(cfg, result.counts, result.taken)
    heads = {trace.head.start for trace in traces}
    for entry in cfg.indirect_entries:
        assert entry in heads, "indirect entry %d absorbed mid-trace" % entry


def test_edge_counts_match_block_counts():
    program = translate_module(compile_source(PROGRAMS["append"]))
    result = Emulator(program).run()
    cfg = Cfg(program)
    edges = edge_counts(cfg, result.counts, result.taken)
    for (src, dst), count in edges.items():
        assert count >= 0
        assert count <= result.counts[src]


@pytest.mark.parametrize("name", ["append", "nondeterminism", "cut"])
def test_transform_of_transform_is_stable_semantics(name):
    """Applying the transform to its own output must stay correct."""
    _, result, transform = transformed(PROGRAMS[name])
    second_input = transform.program
    second_result = Emulator(second_input).run()
    second = form_superblocks(second_input, second_result.counts,
                              second_result.taken)
    final = Emulator(second.program).run()
    assert (final.status, final.output) == (result.status, result.output)
