"""The deterministic fault-injection registry itself.

The chaos suite (``test_chaos.py``) proves the *system* survives
injected faults; this file pins the registry's own contract — spec
parsing, fuse accounting (in-process and cross-process), and the
behaviour of each fault kind in isolation.
"""

import os
import time

import pytest

from repro.testing import faults

pytestmark = pytest.mark.chaos


# --------------------------------------------------------------------------
# Spec parsing: arming a fault that can never fire is itself a bug.

def test_parse_spec_grammar():
    specs = faults.parse_spec(
        "parallel.task=error:2, cache.read=corrupt ,"
        "parallel.task=hang:1:0.25")
    assert [(s.site, s.kind, s.times, s.param) for s in specs] == [
        ("parallel.task", "error", 2, None),
        ("cache.read", "corrupt", 1, None),
        ("parallel.task", "hang", 1, 0.25),
    ]
    # Two specs at one site keep separate fuse indices.
    assert specs[0].index != specs[2].index


@pytest.mark.parametrize("text,fragment", [
    ("nowhere.special=error", "unknown fault site"),
    ("parallel.task=corrupt", "not supported at site"),
    ("parallel.task=error:0", "times must be >= 1"),
    ("parallel.task", "malformed fault spec"),
], ids=["site", "kind", "times", "grammar"])
def test_parse_spec_rejects_bad_input(text, fragment):
    with pytest.raises(ValueError) as caught:
        faults.parse_spec(text)
    assert fragment in str(caught.value)


# --------------------------------------------------------------------------
# Eager environment validation: a typo'd spec fails fast at startup
# with the full site/kind menu, instead of arming a fault that
# silently never fires.

def test_validate_environment_accepts_unset_and_valid(monkeypatch):
    monkeypatch.delenv(faults.ENV_SPEC, raising=False)
    assert faults.validate_environment() == []
    monkeypatch.setenv(faults.ENV_SPEC, "serve.request=error:2")
    specs = faults.validate_environment()
    assert [(s.site, s.kind, s.times) for s in specs] \
        == [("serve.request", "error", 2)]


def test_validate_environment_lists_every_site_on_error():
    environ = {faults.ENV_SPEC: "serve.request=bogus:1"}
    with pytest.raises(ValueError) as caught:
        faults.validate_environment(environ)
    message = str(caught.value)
    assert "invalid %s=" % faults.ENV_SPEC in message
    assert "known fault sites:" in message
    for site, kinds in faults.SITES.items():
        assert site in message
        for kind in kinds:
            assert kind in message


def test_known_sites_text_is_one_line_per_site():
    lines = faults.known_sites_text().splitlines()
    assert len(lines) == len(faults.SITES)
    assert any(line.strip().startswith("serve.request:")
               for line in lines)
    assert any(line.strip().startswith("cache.shard:")
               for line in lines)


# --------------------------------------------------------------------------
# Fire accounting.

def test_unarmed_sites_are_free():
    assert os.environ.get(faults.ENV_SPEC) is None
    assert not faults.armed("parallel.task")
    assert faults.fire("parallel.task") is None


def test_in_process_fuses_fire_exactly_times():
    with faults.injected("parallel.task=error:2"):
        assert faults.armed("parallel.task")
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                faults.fire("parallel.task")
        # Spent: later invocations pass through.
        assert faults.fire("parallel.task") is None
        assert faults.fire("parallel.task") is None
    assert not faults.armed("parallel.task")


def test_state_dir_fuses_are_shared_globally(tmp_path):
    """With a state directory, *times* bounds fires across any number
    of (re-)armed processes — a resurrected pool does not re-fire."""
    state = str(tmp_path / "state")
    with faults.injected("emulator.run=step-limit:2", state):
        outcomes = [faults.fire("emulator.run") for _ in range(4)]
    assert outcomes == ["step-limit", "step-limit", None, None]
    assert len(os.listdir(state)) == 2
    # Re-arming against the same state directory finds spent fuses.
    with faults.injected("emulator.run=step-limit:2", state):
        assert faults.fire("emulator.run") is None


def test_site_specific_kinds_are_returned_not_enacted():
    with faults.injected("cache.write=torn:1"):
        assert faults.fire("cache.write") == "torn"


def test_crash_outside_a_worker_degrades_to_an_exception():
    assert not faults.in_worker()
    with faults.injected("parallel.task=crash:1"):
        with pytest.raises(faults.InjectedFault) as caught:
            faults.fire("parallel.task")
    assert "refusing to kill" in str(caught.value)


def test_hang_sleeps_param_seconds_then_passes_through():
    with faults.injected("parallel.task=hang:1:0.2"):
        started = time.monotonic()
        assert faults.fire("parallel.task") is None
        assert time.monotonic() - started >= 0.2


def test_injected_restores_the_environment(tmp_path):
    os.environ.pop(faults.ENV_SPEC, None)
    with faults.injected("parallel.task=error:1", str(tmp_path)):
        assert os.environ[faults.ENV_SPEC] == "parallel.task=error:1"
        assert os.environ[faults.ENV_STATE] == str(tmp_path)
    assert faults.ENV_SPEC not in os.environ
    assert faults.ENV_STATE not in os.environ


def test_injected_validates_eagerly():
    with pytest.raises(ValueError):
        faults.injected("bogus.site=error")


def test_corrupt_file_flips_one_byte(tmp_path):
    path = str(tmp_path / "victim")
    with open(path, "wb") as handle:
        handle.write(b"0123456789")
    faults.corrupt_file(path)
    damaged = open(path, "rb").read()
    assert len(damaged) == 10
    assert damaged != b"0123456789"
    assert damaged[5] == ord("5") ^ 0xFF
