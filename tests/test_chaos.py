"""Chaos suite: injected faults at every registered site must not
change the numbers.

Every scenario arms :mod:`repro.testing.faults` at one (or many) of
the registered sites, runs ``evaluate_many`` under a test-tuned
:class:`SupervisorPolicy`, and asserts three things:

* the evaluation data is **identical** to a fault-free golden run;
* after a confirming fault-free warm pass, the cache artefacts are
  **byte-identical** to the golden run's;
* the :class:`EvaluationReport` *records* the recovery (retries, pool
  restarts, degradation) — resilience must be observable, not silent.

The fire ordinals are deterministic (fuse files under
``REPRO_FAULT_STATE``), and the supervisor's backoff jitter is seeded,
so this suite is reproducible; ``REPRO_CHAOS_SEED`` (CI pins 1992)
selects the jitter stream.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.atomicio import FileLock
from repro.compaction import sequential, vliw
from repro.evaluation import parallel
from repro.evaluation.parallel import CacheStore, EvaluationEngine
from repro.evaluation.supervisor import SupervisorPolicy
from repro.testing import faults

pytestmark = pytest.mark.chaos

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1992"))

BENCH = "conc30"


def _request():
    return {"name": BENCH,
            "configs": {"seq": (sequential(), "bb"),
                        "vliw3": (vliw(3), "trace")}}


def _policy(**overrides):
    values = dict(max_attempts=4, deadline=30.0, backoff_base=0.01,
                  backoff_cap=0.05, seed=SEED, max_pool_restarts=2,
                  poll=0.02)
    values.update(overrides)
    return SupervisorPolicy(**values)


def _artefacts(root):
    """{filename: bytes} of the content-addressed artefacts in *root*."""
    return {name: open(os.path.join(str(root), name), "rb").read()
            for name in sorted(os.listdir(str(root)))
            if name.startswith("cas-") and name.endswith(".json")}


def _evaluate(cache_root, jobs, policy):
    store = CacheStore(root=str(cache_root))
    with EvaluationEngine(jobs=jobs, store=store,
                          policy=policy) as engine:
        data = engine.evaluate_many([_request()])[0].data
        return data, engine.report, store


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """Fault-free evaluation: the numbers and artefact bytes every
    chaos scenario must reproduce exactly."""
    root = tmp_path_factory.mktemp("golden")
    saved = {name: os.environ.get(name)
             for name in ("REPRO_CACHE_DIR", faults.ENV_SPEC,
                          faults.ENV_STATE)}
    os.environ["REPRO_CACHE_DIR"] = str(root)
    os.environ.pop(faults.ENV_SPEC, None)
    os.environ.pop(faults.ENV_STATE, None)
    memos = (parallel._worker_programs, parallel._worker_regions)
    parallel._worker_programs, parallel._worker_regions = {}, {}
    try:
        data, report, _ = _evaluate(root, jobs=1, policy=_policy())
    finally:
        parallel._worker_programs, parallel._worker_regions = memos
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    assert report.counts()["failed"] == 0
    return {"data": data, "artefacts": _artefacts(root)}


@pytest.fixture
def hermetic(monkeypatch):
    """Fresh per-process memos so no scenario inherits another's state."""
    monkeypatch.setattr(parallel, "_worker_programs", {})
    monkeypatch.setattr(parallel, "_worker_regions", {})


def _chaos(monkeypatch, tmp_path, spec, jobs=1, policy=None,
           warm_first=False):
    """Run the sweep with *spec* armed; returns (data, report, store,
    cache_root)."""
    cache = tmp_path / "cache"
    cache.mkdir(exist_ok=True)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    if warm_first:
        _evaluate(cache, jobs=1, policy=_policy())
    monkeypatch.setenv(faults.ENV_SPEC, spec)
    monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "fault-state"))
    try:
        data, report, store = _evaluate(cache, jobs,
                                        policy or _policy())
    finally:
        monkeypatch.delenv(faults.ENV_SPEC)
        monkeypatch.delenv(faults.ENV_STATE)
    return data, report, store, cache


def _confirm(cache, golden):
    """A fault-free warm pass over *cache* must serve golden bytes."""
    data, report, store = _evaluate(cache, jobs=1, policy=_policy())
    assert data == golden["data"]
    assert _artefacts(cache) == golden["artefacts"]
    return store


# --------------------------------------------------------------------------
# One scenario per fault kind/site.

def test_transient_task_errors_are_retried(monkeypatch, tmp_path,
                                           hermetic, golden):
    data, report, _, cache = _chaos(
        monkeypatch, tmp_path, "parallel.task=error:2", jobs=2)
    assert data == golden["data"]
    counts = report.counts()
    assert counts["retried"] >= 1 and counts["failed"] == 0
    _confirm(cache, golden)


def test_sigkilled_worker_is_survived(monkeypatch, tmp_path, hermetic,
                                      golden):
    """The crash kind is a literal ``kill -9`` of the worker process
    mid-task; the pool is resurrected and the sweep completes."""
    data, report, _, cache = _chaos(
        monkeypatch, tmp_path, "parallel.task=crash:1", jobs=2)
    assert data == golden["data"]
    assert report.pool_restarts >= 1
    assert report.counts()["failed"] == 0
    # Exactly one fuse fired: the kill count is deterministic.
    state = tmp_path / "fault-state"
    assert len(os.listdir(str(state))) == 1
    # The cache directory survived the kill in a cleanly readable
    # state: no torn artefacts, no stale lock.
    assert not [name for name in os.listdir(str(cache))
                if name.endswith(".tmp")]
    with FileLock(str(cache / ".lock"), timeout=1.0):
        pass
    _confirm(cache, golden)


def test_hung_worker_is_reaped_by_the_watchdog(monkeypatch, tmp_path,
                                               hermetic, golden):
    """A task sleeping far past its deadline is detected, its pool is
    killed, and the retry produces golden numbers."""
    data, report, _, cache = _chaos(
        monkeypatch, tmp_path, "parallel.task=hang:1:20", jobs=2,
        policy=_policy(deadline=1.0))
    assert data == golden["data"]
    counts = report.counts()
    assert report.pool_restarts >= 1
    assert counts["retried"] >= 1 and counts["failed"] == 0
    _confirm(cache, golden)


def test_cache_corruption_is_recomputed(monkeypatch, tmp_path,
                                        hermetic, golden):
    data, report, store, cache = _chaos(
        monkeypatch, tmp_path, "cache.read=corrupt:1", warm_first=True)
    assert data == golden["data"]
    assert store.corrupt == 1
    # The corrupted entry was repaired in place: bytes match golden
    # again without a confirming pass.
    assert _artefacts(cache) == golden["artefacts"]
    _confirm(cache, golden)


def test_torn_write_never_leaves_a_bad_artefact(monkeypatch, tmp_path,
                                                hermetic, golden):
    """A write 'crashed' between temp file and publish leaves no
    destination file at all — a later run recomputes it cleanly."""
    data, _, _, cache = _chaos(
        monkeypatch, tmp_path, "cache.write=torn:1")
    assert data == golden["data"]
    # Every artefact that was published parses and passes its checksum.
    store = CacheStore(root=str(cache))
    for name, content in _artefacts(cache).items():
        entry = json.loads(content)
        assert store.get(entry["key"]) == entry["payload"]
    _confirm(cache, golden)


def test_emulator_step_limit_fault_is_retried(monkeypatch, tmp_path,
                                              hermetic, golden):
    data, report, _, cache = _chaos(
        monkeypatch, tmp_path, "emulator.run=step-limit:1")
    assert data == golden["data"]
    assert report.counts()["retried"] >= 1
    _confirm(cache, golden)


def test_pipeline_stage_faults_are_retried(monkeypatch, tmp_path,
                                           hermetic, golden):
    data, report, _, cache = _chaos(
        monkeypatch, tmp_path,
        "pipeline.superblock=error:1,pipeline.cycles=error:1")
    assert data == golden["data"]
    assert report.counts()["retried"] >= 2
    _confirm(cache, golden)


def test_crash_loop_degrades_to_serial_and_completes(
        monkeypatch, tmp_path, hermetic, golden):
    """Past the pool-restart budget the supervisor stops forking and
    finishes in-process; the numbers still match golden."""
    data, report, _, cache = _chaos(
        monkeypatch, tmp_path, "parallel.task=crash:3", jobs=2,
        policy=_policy(max_pool_restarts=1))
    assert data == golden["data"]
    assert report.degraded
    assert report.counts()["failed"] == 0
    assert report.counts()["degraded"] >= 1
    _confirm(cache, golden)


def test_every_site_at_once(monkeypatch, tmp_path, hermetic, golden):
    """The acceptance scenario: faults armed at every registered site
    across a cold pooled run and a warm corrupted run; both converge
    to golden bytes and the report shows the recoveries."""
    cold_spec = ",".join([
        "parallel.task=crash:1",
        "parallel.task=error:1",
        "pipeline.superblock=error:1",
        "pipeline.cycles=error:1",
        "emulator.run=step-limit:1",
        "cache.write=torn:1",
    ])
    data, report, _, cache = _chaos(
        monkeypatch, tmp_path, cold_spec, jobs=2)
    assert data == golden["data"]
    counts = report.counts()
    assert counts["failed"] == 0
    assert counts["retried"] >= 1
    assert report.pool_restarts >= 1

    # Warm phase: read-side corruption on the surviving artefacts.
    warm_data, warm_report, warm_store, _ = _chaos(
        monkeypatch, tmp_path, "cache.read=corrupt:1")
    assert warm_data == golden["data"]
    assert warm_store.corrupt == 1
    _confirm(cache, golden)


def test_exhausted_retries_still_fail_loudly(monkeypatch, tmp_path,
                                             hermetic, golden):
    """Resilience must not shade into silent wrongness: more faults
    than attempts fails the cell and names it."""
    with pytest.raises(parallel.EvaluationError) as caught:
        _chaos(monkeypatch, tmp_path, "parallel.task=error:20",
               policy=_policy(max_attempts=2))
    assert "injected transient fault" in str(caught.value)


# --------------------------------------------------------------------------
# SIGINT of the whole CLI (cooperative cancellation, exit code 130).

def _cli_env(tmp_path):
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cli-cache")
    return env


def test_cli_sigint_exits_130_and_leaves_cache_clean(tmp_path):
    env = _cli_env(tmp_path)
    # A 60s hang guarantees the run is still in flight when the signal
    # lands (the fuse file makes the hang fire exactly once).
    env[faults.ENV_SPEC] = "parallel.task=hang:1:60"
    env[faults.ENV_STATE] = str(tmp_path / "state")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "evaluate", "--jobs", "2",
         "--bench", BENCH],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)
    time.sleep(4.0)
    process.send_signal(signal.SIGINT)
    try:
        _, errors = process.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise
    assert process.returncode == 130, errors
    assert "interrupted" in errors
    # CPython's process-pool atexit hook can race the post-SIGINT
    # teardown and dump an "Exception ignored in: ..." traceback on
    # stderr after repro's exit path has finished; that noise belongs
    # to the interpreter, not repro, so only repro's own line is
    # pinned here.
    own = [line for line in errors.strip().splitlines()
           if line and not line.startswith(
               (" ", "Exception ignored", "Traceback", "OSError"))]
    assert len(own) == 1, errors

    cache = tmp_path / "cli-cache"
    leftovers = [name for name in os.listdir(str(cache))
                 if name.endswith(".tmp")]
    assert not leftovers
    # The advisory lock died with the process.
    with FileLock(str(cache / ".lock"), timeout=1.0):
        pass
    # A fresh, fault-free run reads the partial cache cleanly.
    env.pop(faults.ENV_SPEC)
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "evaluate", "--jobs", "1",
         "--bench", BENCH],
        env=env, capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    assert BENCH in completed.stdout


# --------------------------------------------------------------------------
# Or-parallel search under fire: stolen branches are killed, hung and
# failed, and the reassembled answers stay byte-identical to the clean
# sequential oracle (``orparallel.task`` fires before a branch does any
# work, so every recovery is a full branch retry).

#: four pure branches, enough stolen tasks for multi-shot fault specs
ORP_SOURCE = """
color(red). color(green). color(blue). color(white).
pair(X, Y) :- color(X), color(Y).
"""

ORP_GOAL = "pair(X, Y)"


def _orparallel_chaos(monkeypatch, tmp_path, spec, policy=None):
    """Run the or-parallel query with *spec* armed; (result, report)."""
    from repro.interp.orparallel import or_solutions
    monkeypatch.setenv(faults.ENV_SPEC, spec)
    monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "fault-state"))
    store = CacheStore(root=str(tmp_path / "orp-cache"))
    try:
        with EvaluationEngine(jobs=2, store=store,
                              policy=policy or _policy()) as engine:
            result = or_solutions(ORP_SOURCE, ORP_GOAL, engine=engine,
                                  use_memo=False)
            report = engine.report
    finally:
        monkeypatch.delenv(faults.ENV_SPEC)
        monkeypatch.delenv(faults.ENV_STATE)
    return result, report


@pytest.fixture(scope="module")
def orparallel_golden():
    """The clean sequential answer stream every faulted run must
    reproduce byte for byte."""
    from repro.interp.orparallel import sequential_answers
    return sequential_answers(ORP_SOURCE, ORP_GOAL)


def _assert_identical(result, golden):
    assert result["mode"] == "parallel"
    assert result["answers"] == golden["answers"]
    assert result["output"] == golden["output"]
    assert result["count"] == golden["count"]


def test_orparallel_branch_errors_are_retried(monkeypatch, tmp_path,
                                              hermetic,
                                              orparallel_golden):
    result, report = _orparallel_chaos(
        monkeypatch, tmp_path, "orparallel.task=error:2")
    _assert_identical(result, orparallel_golden)
    counts = report.counts()
    assert counts["retried"] >= 1 and counts["failed"] == 0


def test_orparallel_sigkilled_branch_is_survived(monkeypatch, tmp_path,
                                                 hermetic,
                                                 orparallel_golden):
    result, report = _orparallel_chaos(
        monkeypatch, tmp_path, "orparallel.task=crash:1")
    _assert_identical(result, orparallel_golden)
    assert report.pool_restarts >= 1
    assert report.counts()["failed"] == 0
    # Exactly one fuse fired: the kill ordinal is deterministic.
    assert len(os.listdir(str(tmp_path / "fault-state"))) == 1


def test_orparallel_hung_branch_is_reaped(monkeypatch, tmp_path,
                                          hermetic, orparallel_golden):
    result, report = _orparallel_chaos(
        monkeypatch, tmp_path, "orparallel.task=hang:1:20",
        policy=_policy(deadline=1.0))
    _assert_identical(result, orparallel_golden)
    counts = report.counts()
    assert report.pool_restarts >= 1
    assert counts["retried"] >= 1 and counts["failed"] == 0


def test_orparallel_exhausted_retries_fail_loudly(monkeypatch,
                                                  tmp_path, hermetic):
    with pytest.raises(parallel.EvaluationError) as caught:
        _orparallel_chaos(monkeypatch, tmp_path,
                          "orparallel.task=error:20",
                          policy=_policy(max_attempts=2))
    assert "injected transient fault" in str(caught.value)
