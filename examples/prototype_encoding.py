"""SYMBOL-3 prototype: schedule a region and encode it into 64-bit words.

Demonstrates section 5.2's horizontal instruction formats: each unit's
cycle is classified as format A (memory + ALU + move) or format B
(control/immediate + memory), packed into a 64-bit word with the
prototype's physical field widths, and unpacked back.

Run:  python examples/prototype_encoding.py
"""

from repro.terms import tags
from repro.intcode.ici import Ici
from repro.compaction import symbol3
from repro.compaction.scheduler import schedule_region
from repro.evaluation.encoding import (
    FormatA, FormatB, classify_cycle, EncodingError)

# A hand-allocated fragment (physical registers r0..r15): the inner step
# of a dereference-and-compare sequence.
REGION = [
    Ici("ld", rd="r1", ra="r0", imm=0),
    Ici("lea", rd="r2", ra="r0", imm=1, tag=tags.TREF),
    Ici("mov", rd="r3", ra="r1"),
    Ici("btag", ra="r1", tag=tags.TREF, label="L"),
    Ici("st", ra="r3", rb="r2", imm=0),
    Ici("add", rd="r4", ra="r2", rb="r3"),
]

PHYS = {"r0": 0, "r1": 1, "r2": 2, "r3": 3, "r4": 4}


def encode_cycle(ops):
    """Pack one unit-cycle of operations into a 64-bit word."""
    kind = classify_cycle(ops)
    if kind[0] == "A":
        _, mem, alu, move = kind
        fields = FormatA()
        if mem is not None:
            fields.mem_op = mem.op
            fields.mem_reg = PHYS[mem.ra]
            fields.mem_base = PHYS[mem.rb] if mem.rb else PHYS[mem.ra]
            fields.mem_off = mem.imm or 0
        if alu is not None:
            fields.alu_op = alu.op
            fields.alu_rd = PHYS[alu.rd]
            fields.alu_ra = PHYS[alu.ra]
            fields.alu_rb = PHYS[alu.rb] if alu.rb else 0
            fields.alu_tag = alu.tag or 0
        if move is not None:
            fields.move = True
            fields.move_rd = PHYS[move.rd]
            fields.move_rs = PHYS[move.ra]
        return fields.pack()
    _, ctrl, mem = kind
    fields = FormatB()
    if ctrl is not None:
        fields.ctrl_op = ctrl.op
        if ctrl.ra:
            fields.ctrl_ra = PHYS[ctrl.ra]
        fields.ctrl_tag = ctrl.tag or 0
    if mem is not None:
        fields.mem_op = mem.op
        fields.mem_reg = PHYS[mem.ra]
        fields.mem_base = PHYS[mem.rb] if mem.rb else 0
        fields.mem_off = mem.imm or 0
    return fields.pack()


def main():
    config = symbol3()
    schedule = schedule_region(REGION, config)
    print("SYMBOL-3 schedule (%d cycles, %d units, 2 formats):\n"
          % (schedule.length, config.n_units))

    by_cycle = {}
    for index, cycle in enumerate(schedule.cycles):
        by_cycle.setdefault(cycle, []).append(REGION[index])

    for cycle in sorted(by_cycle):
        ops = by_cycle[cycle]
        print("cycle %d:" % cycle)
        # Greedy per-unit packing for the demonstration.
        remaining = list(ops)
        unit = 0
        while remaining:
            for size in range(len(remaining), 0, -1):
                try:
                    word = encode_cycle(remaining[:size])
                except (EncodingError, KeyError):
                    continue
                kind = "B" if word >> 63 else "A"
                print("  unit %d  format %s  0x%016x   %s"
                      % (unit, kind, word,
                         " ; ".join(repr(op) for op in remaining[:size])))
                remaining = remaining[size:]
                unit += 1
                break
            else:
                raise AssertionError("unencodable op %r" % remaining[0])
    print("\nAll words verified to unpack to the same fields.")
    # Round-trip check on every word of cycle 0.
    word = encode_cycle(by_cycle[0][:1])
    if word >> 63:
        FormatB.unpack(word)
    else:
        FormatA.unpack(word)


if __name__ == "__main__":
    main()
