"""Regenerate every table and figure of the paper's evaluation.

A cold run fans the benchmark x machine-configuration cells out across
worker processes (``--jobs``, default: all cores); every artefact is
memoised in the content-addressed cache, so later runs are served in
seconds without re-emulation.

Run:  python examples/run_paper_evaluation.py [--jobs N]
"""

import argparse
import os

from repro.evaluation.parallel import configure
from repro.experiments import ALL_EXPERIMENTS

ORDER = ["figure2", "figure3", "table1", "table2", "figure4", "table3",
         "table4", "table5"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 1,
                        help="evaluation worker processes "
                             "(default: all cores; 1 = in-process)")
    args = parser.parse_args()
    configure(jobs=args.jobs)
    for name in ORDER:
        print(ALL_EXPERIMENTS[name].render())
        print()
        print("-" * 78)
        print()


if __name__ == "__main__":
    main()
