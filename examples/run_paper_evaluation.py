"""Regenerate every table and figure of the paper's evaluation.

The first run emulates and schedules the whole benchmark suite (a few
minutes); results are cached on disk, so later runs are instant.

Run:  python examples/run_paper_evaluation.py
"""

from repro.experiments import ALL_EXPERIMENTS

ORDER = ["figure2", "figure3", "table1", "table2", "figure4", "table3",
         "table4", "table5"]


def main():
    for name in ORDER:
        print(ALL_EXPERIMENTS[name].render())
        print()
        print("-" * 78)
        print()


if __name__ == "__main__":
    main()
