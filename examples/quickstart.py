"""Quickstart: compile Prolog, run it, measure ILP speedup.

Run:  python examples/quickstart.py
"""

import repro

SOURCE = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).

nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).

main :- nrev([1,2,3,4,5,6,7,8,9,10], R), write(R), nl.
"""


def main():
    # 1. Compile Prolog to the RISC-level Intermediate Code (ICI).
    program = repro.compile_prolog(SOURCE)
    print("compiled to %d ICI operations" % len(program))

    # 2. Execute on the sequential emulator.
    result = repro.emulate(program)
    print("executed %d operations, output: %s"
          % (result.steps, result.output.strip()))
    assert result.succeeded

    # 3. How much instruction-level parallelism can the back-end extract?
    for config in (repro.bam_like(), repro.vliw(1), repro.vliw(3),
                   repro.ideal()):
        regioning = "bb" if config.name == "bam" else "trace"
        speedup = repro.measure_speedup(program, config,
                                        regioning=regioning)
        print("%-8s machine: %.2fx over sequential"
              % (config.name, speedup))

    # The shared-memory Amdahl bound (paper section 4.2):
    from repro.analysis.amdahl import memory_bound_speedup
    from repro.intcode.ici import OP_CLASS, MEM
    mem_ops = sum(count for pc, count in enumerate(result.counts)
                  if count and OP_CLASS[program.instructions[pc].op] == MEM)
    fraction = mem_ops / result.steps
    print("memory fraction %.2f -> Amdahl ceiling %.2fx"
          % (fraction, memory_bound_speedup(fraction)))


if __name__ == "__main__":
    main()
