"""Branch-predictability study on your own Prolog program (section 4.4).

The paper's surprising observation: Prolog has essentially no loops, yet
its branches are almost deterministic — trace scheduling works.  This
example reproduces that analysis for a user-supplied program.

Run:  python examples/branch_predictability.py
"""

import repro
from repro.analysis.branch_stats import (
    branch_records, average_p_fp, p_fp_histogram, taken_rule_stats)
from repro.experiments.render import render_histogram

SOURCE = """
% A small constraint search: map colouring with four colours.
colour(red). colour(green). colour(blue). colour(yellow).

diff(A, B) :- colour(A), colour(B), \\+ A == B.

main :- diff(WA, NT), diff(WA, SA), diff(NT, SA), diff(NT, Q),
        diff(SA, Q), diff(SA, NSW), diff(Q, NSW), diff(SA, V),
        diff(NSW, V),
        write([WA, NT, SA, Q, NSW, V]), nl.
"""


def main():
    program = repro.compile_prolog(SOURCE)
    result = repro.emulate(program)
    print("output:", result.output.strip())

    records = branch_records(program, result.counts, result.taken)
    print("\n%d static branches executed, %d dynamic executions"
          % (len(records), sum(r.executed for r in records)))
    print("average probability of faulty prediction: %.3f "
          "(paper suite: ~0.15)" % average_p_fp(records))

    edges, weights = p_fp_histogram(records, bins=10)
    print()
    print(render_histogram("P_fp distribution (execution weighted)",
                           edges, weights))

    rule = taken_rule_stats(records)
    print("\nthe 90/50 branch-taken rule (numeric code: ~0.9 / ~0.5):")
    for direction in ("backward", "forward"):
        entry = rule[direction]
        print("  %-8s branches: mean taken %.2f over %d sites"
              % (direction, entry["mean_taken"], entry["branches"]))

    print("\nmost unpredictable branches (the data-dependent core):")
    worst = sorted(records, key=lambda r: -r.p_fp)[:5]
    for record in worst:
        print("  pc %5d  P_fp %.2f  executed %6d  %r"
              % (record.pc, record.p_fp, record.executed,
                 program.instructions[record.pc]))


if __name__ == "__main__":
    main()
