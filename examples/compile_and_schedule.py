"""Compiler explorer: watch a clause travel the whole SYMBOL pipeline.

Shows the BAM code, the ICI expansion, the profile, the picked traces,
and the VLIW schedule of the hottest region — the contents of the paper's
Figure 1, one stage at a time.

Run:  python examples/compile_and_schedule.py
"""

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.evaluation.pipeline import superblock_regions, _off_live_map
from repro.compaction import vliw
from repro.compaction.scheduler import schedule_region

SOURCE = """
part([], _, [], []).
part([X|L], Y, [X|L1], L2) :- X =< Y, !, part(L, Y, L1, L2).
part([X|L], Y, L1, [X|L2]) :- part(L, Y, L1, L2).

main :- part([5,1,9,2,8,3,7,4,6], 5, Small, Big),
        write(Small), nl, write(Big), nl.
"""


def main():
    # Front-end: Prolog -> BAM.
    module = compile_source(SOURCE)
    print("=" * 70)
    print("BAM code for part/4 (first 25 lines)")
    print("=" * 70)
    listing = module.listing().splitlines()
    start = next(i for i, line in enumerate(listing) if "part/4" in line)
    print("\n".join(listing[start:start + 25]))

    # BAM -> ICI.
    program = translate_module(module)
    print()
    print("=" * 70)
    print("ICI expansion around the part/4 entry (20 instructions)")
    print("=" * 70)
    entry = program.labels["P:part/4"]
    print(program.listing(entry, entry + 20))

    # Profile by sequential emulation.
    result = run_program(program)
    print()
    print("program output:\n%s" % result.output)
    print("dynamic ICI operations: %d" % result.steps)

    # Global compaction: trace picking + superblock formation.
    region_set = superblock_regions(program, result)
    executed = region_set.executed_regions()
    hottest = max(executed,
                  key=lambda r: region_set.counts[r.start] * r.size)
    print("%d regions (%d executed); hottest has %d ops, %d entries"
          % (len(region_set.regions), len(executed), hottest.size,
             region_set.counts[hottest.start]))

    # Schedule the hottest region for a 3-unit machine.
    ops = region_set.program.instructions[hottest.start:hottest.end]
    off_live, reg_mask = _off_live_map(region_set, hottest)
    schedule = schedule_region(ops, vliw(3), off_live, reg_mask)
    print()
    print("=" * 70)
    print("3-unit VLIW schedule of the hottest region "
          "(%.2f ops/cycle)" % schedule.utilisation())
    print("=" * 70)
    rows = {}
    for index, cycle in enumerate(schedule.cycles):
        rows.setdefault(cycle, []).append(repr(ops[index]))
    for cycle in sorted(rows):
        print("cycle %2d | %s" % (cycle, "  ||  ".join(rows[cycle])))


if __name__ == "__main__":
    main()
